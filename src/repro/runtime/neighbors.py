"""Neighbor set management.

Overlay node state in MACEDON centres on typed neighbor sets::

    neighbor_types {
        oparent 1 { double delay; }
        ochildren MAX_CHILDREN { double delay; }
    }

A :class:`NeighborType` declares the per-entry fields and the maximum size; a
:class:`NeighborSet` is one instance of such a type held by a node (e.g.
``papa``, ``kids``).  The runtime exposes the paper's neighbor-management
primitives (``neighbor_add``, ``neighbor_size``, ``neighbor_random``,
``neighbor_query``, ``neighbor_entry``, ``neighbor_clear``, …) on the agent,
all of which operate on these sets.

Neighbor sets declared ``fail_detect`` are additionally registered with the
node's failure detector so a silent peer triggers the protocol's ``error``
API transition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Default values by declared field type.
_FIELD_DEFAULTS: dict[str, Any] = {
    "int": 0,
    "long": 0,
    "double": 0.0,
    "float": 0.0,
    "bool": False,
    "key": 0,
    "ipaddr": 0,
    "string": "",
    "neighbor": None,
    "list": None,
}


class NeighborError(ValueError):
    """Raised for misuse of neighbor sets (overflow, unknown entry, …)."""


@dataclass(frozen=True)
class NeighborFieldSpec:
    """One per-entry field of a neighbor type."""

    name: str
    type_name: str

    def default(self) -> Any:
        if self.type_name == "list":
            return []
        return _FIELD_DEFAULTS.get(self.type_name, None)


@dataclass(frozen=True)
class NeighborType:
    """A declared neighbor type: per-entry fields plus a maximum cardinality."""

    name: str
    max_size: int
    fields: tuple[NeighborFieldSpec, ...] = ()

    def field_names(self) -> list[str]:
        return [spec.name for spec in self.fields]


class NeighborEntry:
    """One neighbor in a set: its address, overlay key, and declared fields."""

    def __init__(self, neighbor_type: NeighborType, address: int,
                 key: Optional[int] = None, **fields: Any) -> None:
        self._type = neighbor_type
        self.addr = address
        #: Alias kept because the paper's sample transition uses ``ipaddr``.
        self.ipaddr = address
        self.key = key
        declared = set(neighbor_type.field_names())
        unknown = set(fields) - declared
        if unknown:
            raise NeighborError(
                f"neighbor type {neighbor_type.name!r} has no field(s) {sorted(unknown)}"
            )
        for spec in neighbor_type.fields:
            setattr(self, spec.name, fields.get(spec.name, spec.default()))

    @property
    def type_name(self) -> str:
        return self._type.name

    def as_dict(self) -> dict[str, Any]:
        data = {"addr": self.addr, "key": self.key}
        for spec in self._type.fields:
            data[spec.name] = getattr(self, spec.name)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborEntry({self._type.name}, addr={self.addr}, key={self.key})"


class NeighborSet:
    """An ordered set of neighbors of one declared type.

    Insertion order is preserved (useful for FIFO-style eviction) and entries
    are keyed by host address, so membership tests are O(1).
    """

    def __init__(self, name: str, neighbor_type: NeighborType,
                 fail_detect: bool = False,
                 rng: Optional[random.Random] = None) -> None:
        self.name = name
        self.type = neighbor_type
        self.fail_detect = fail_detect
        self._entries: dict[int, NeighborEntry] = {}
        self._rng = rng or random.Random(0)
        #: Observers notified on membership change (used by the failure
        #: detector and by the notify() upcall plumbing).
        self._observers: list = []

    # --------------------------------------------------------------- plumbing
    def add_observer(self, callback) -> None:
        self._observers.append(callback)

    def _notify(self, action: str, address: int) -> None:
        for callback in self._observers:
            callback(self, action, address)

    # ------------------------------------------------------------- membership
    def add(self, address: int, key: Optional[int] = None, **fields: Any) -> NeighborEntry:
        """Add (or refresh) a neighbor.  Returns its entry.

        Adding an address already present updates its fields in place rather
        than duplicating it.  Exceeding the declared maximum size raises.
        """
        address = int(address)
        existing = self._entries.get(address)
        if existing is not None:
            if key is not None:
                existing.key = key
            for name, value in fields.items():
                setattr(existing, name, value)
            return existing
        if len(self._entries) >= self.type.max_size:
            raise NeighborError(
                f"neighbor set {self.name!r} is full "
                f"(max {self.type.max_size} of type {self.type.name!r})"
            )
        entry = NeighborEntry(self.type, address, key=key, **fields)
        self._entries[address] = entry
        self._notify("add", address)
        return entry

    def remove(self, address: int) -> Optional[NeighborEntry]:
        """Remove a neighbor if present; returns the removed entry or None."""
        entry = self._entries.pop(int(address), None)
        if entry is not None:
            self._notify("remove", int(address))
        return entry

    def clear(self) -> None:
        for address in list(self._entries):
            self.remove(address)

    def query(self, address: int) -> bool:
        """Membership test (the paper's ``neighbor_query``)."""
        return int(address) in self._entries

    def entry(self, address: int) -> NeighborEntry:
        """Direct entry access (the paper's ``neighbor_entry``)."""
        try:
            return self._entries[int(address)]
        except KeyError as exc:
            raise NeighborError(
                f"address {address} is not in neighbor set {self.name!r}"
            ) from exc

    def get(self, address: int) -> Optional[NeighborEntry]:
        return self._entries.get(int(address))

    def random(self) -> Optional[NeighborEntry]:
        """A uniformly random entry (the paper's ``neighbor_random``), or None."""
        if not self._entries:
            return None
        address = self._rng.choice(list(self._entries))
        return self._entries[address]

    def size(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.type.max_size

    def addresses(self) -> list[int]:
        return list(self._entries)

    def keys(self) -> list[Optional[int]]:
        return [entry.key for entry in self._entries.values()]

    def entries(self) -> list[NeighborEntry]:
        return list(self._entries.values())

    def first(self) -> Optional[NeighborEntry]:
        for entry in self._entries.values():
            return entry
        return None

    # ------------------------------------------------------------- dunderland
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NeighborEntry]:
        return iter(list(self._entries.values()))

    def __contains__(self, address: int) -> bool:
        return self.query(address)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborSet({self.name!r}, {sorted(self._entries)})"
