"""Hash-based addressing (``macedon_key``).

The paper's API routes on a ``macedon_key`` which "is not necessarily an IP
address (it could be a hash of an IP address or name)".  The MACEDON Chord
implementation uses a 32-bit hash address space; we adopt the same default
width so routing-table comparisons against the baseline implementations are
apples-to-apples, while allowing protocols (Pastry) to request a different
width or digit base.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Union

#: Default width of the hash address space, matching the paper's MACEDON Chord.
DEFAULT_KEY_BITS = 32


def hash_bytes(data: bytes, bits: int = DEFAULT_KEY_BITS) -> int:
    """SHA-1 hash of *data*, truncated to *bits* bits.

    The paper's library collection includes SHA hashing; protocols use it to
    map node addresses and object names into the overlay address space.
    """
    if bits <= 0 or bits > 160:
        raise ValueError(f"key width must be in (0, 160] bits, got {bits}")
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")
    return value >> (160 - bits)


@lru_cache(maxsize=65536)
def _hash_key_cached(cls: type, value: Union[str, int, bytes], bits: int) -> int:
    # ``cls`` is only a cache discriminator: equal-comparing values of
    # different types (2 vs 2.0 vs "2") hash to different byte forms below,
    # so they must not share a cache slot keyed on equality alone.
    if isinstance(value, bytes):
        data = value
    elif isinstance(value, int):
        data = value.to_bytes(8, "big", signed=False)
    else:
        data = str(value).encode("utf-8")
    return hash_bytes(data, bits)


def hash_key(value: Union[str, int, bytes], bits: int = DEFAULT_KEY_BITS) -> int:
    """Hash an arbitrary identifier (name, IP integer, bytes) into the key space.

    A pure function of ``(type, value, bits)``, so the result is memoised:
    overlay protocols hash the same node addresses over and over on every
    maintenance beat, which made SHA-1 a measurable slice of the
    protocol-plane profile.  The cache is bounded (LRU) so pathological
    workloads cannot grow it without limit; unhashable identifiers fall back
    to the direct computation on their string form.
    """
    try:
        return _hash_key_cached(value.__class__, value, bits)
    except TypeError:
        return hash_bytes(str(value).encode("utf-8"), bits)


def key_space_size(bits: int = DEFAULT_KEY_BITS) -> int:
    """Total number of identifiers in a *bits*-wide key space."""
    return 1 << bits


def in_interval(value: int, start: int, end: int, bits: int = DEFAULT_KEY_BITS,
                inclusive_start: bool = False, inclusive_end: bool = False) -> bool:
    """Whether *value* lies on the ring interval (start, end) modulo 2**bits.

    Ring-interval membership is the core predicate of Chord routing; it is
    shared by the MACEDON Chord spec and the lsd baseline so both agree on
    correctness.
    """
    size = 1 << bits
    value %= size
    start %= size
    end %= size
    if start == end:
        # Whole ring, except possibly the endpoints.
        if inclusive_start or inclusive_end:
            return True
        return value != start
    if start < end:
        after_start = value > start or (inclusive_start and value == start)
        before_end = value < end or (inclusive_end and value == end)
        return after_start and before_end
    # Interval wraps around zero.
    after_start = value > start or (inclusive_start and value == start)
    before_end = value < end or (inclusive_end and value == end)
    return after_start or before_end


def ring_distance(a: int, b: int, bits: int = DEFAULT_KEY_BITS) -> int:
    """Clockwise distance from *a* to *b* on the ring."""
    return (b - a) % (1 << bits)


def key_digits(key: int, base_bits: int, digits: int) -> list[int]:
    """Split *key* into *digits* digits of *base_bits* bits each, most significant first.

    Pastry routes by correcting one digit (of ``2**base_bits`` possible values)
    per hop; this helper is shared by the MACEDON Pastry spec and the
    FreePastry baseline.
    """
    mask = (1 << base_bits) - 1
    out = []
    for i in range(digits - 1, -1, -1):
        out.append((key >> (i * base_bits)) & mask)
    return out


def shared_prefix_length(a: int, b: int, base_bits: int, digits: int) -> int:
    """Number of leading digits shared by keys *a* and *b*."""
    da = key_digits(a, base_bits, digits)
    db = key_digits(b, base_bits, digits)
    count = 0
    for x, y in zip(da, db):
        if x != y:
            break
        count += 1
    return count


@dataclass(frozen=True)
class KeySpace:
    """A configured hash address space (width + Pastry-style digit base)."""

    bits: int = DEFAULT_KEY_BITS
    digit_bits: int = 4

    def __post_init__(self) -> None:
        if self.bits % self.digit_bits != 0:
            raise ValueError(
                f"key width {self.bits} is not a multiple of digit width {self.digit_bits}"
            )
        # Frozen dataclass: cache the (hot) derived size via object.__setattr__.
        object.__setattr__(self, "_size", 1 << self.bits)

    @property
    def size(self) -> int:
        return self._size

    @property
    def num_digits(self) -> int:
        return self.bits // self.digit_bits

    @property
    def digit_base(self) -> int:
        return 1 << self.digit_bits

    def hash(self, value: Union[str, int, bytes]) -> int:
        try:
            return _hash_key_cached(value.__class__, value, self.bits)
        except TypeError:  # unhashable identifier: direct computation
            return hash_bytes(str(value).encode("utf-8"), self.bits)

    def distance(self, a: int, b: int) -> int:
        return (b - a) % self._size

    def between(self, value: int, start: int, end: int, *,
                inclusive_start: bool = False, inclusive_end: bool = False) -> bool:
        # Inlined in_interval() over the cached size: this predicate runs on
        # every routing decision of every DHT hop.  Keep the logic in exact
        # lockstep with in_interval() above.
        size = self._size
        value %= size
        start %= size
        end %= size
        if start == end:
            if inclusive_start or inclusive_end:
                return True
            return value != start
        after_start = value > start or (inclusive_start and value == start)
        before_end = value < end or (inclusive_end and value == end)
        if start < end:
            return after_start and before_end
        return after_start or before_end

    def digits(self, key: int) -> list[int]:
        return key_digits(key, self.digit_bits, self.num_digits)

    def shared_prefix(self, a: int, b: int) -> int:
        return shared_prefix_length(a, b, self.digit_bits, self.num_digits)

    def wrap(self, value: int) -> int:
        return value % self.size

    def successor_distance_order(self, origin: int, keys: Iterable[int]) -> list[int]:
        """Sort *keys* by clockwise distance from *origin* (nearest successor first)."""
        return sorted(keys, key=lambda k: self.distance(origin, k))
