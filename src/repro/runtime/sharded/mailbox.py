"""Cross-shard mailbox: pipes, binary framing, and the packet batch codec.

Workers and the coordinating parent exchange three things: per-window batches
of cross-shard packets, the final per-shard metric payloads, and error
reports.  Everything rides on plain ``os.pipe`` file descriptors with
length-prefixed binary frames — no multiprocessing queues, no threads, no
locks, so the barrier protocol stays auditable and the fork-based workers
inherit nothing they did not ask for.

Frame layout (all integers big-endian)::

    !BIQ   frame type (1B) | window index (4B) | payload length (8B)

Packet batches additionally carry one fixed header per packet::

    !dIIQI  arrival time (8B) | src shard (4B) | dst host (4B)
            | per-(src shard -> dst shard) sequence number (8B)
            | pickled-packet length (4B)

The header carries everything the deterministic barrier merge sorts on —
``(arrival_time, src_shard, seq)`` — plus the destination host, so routing
and ordering never need to unpickle a payload.  The pickled packet preserves
``size`` (and therefore ``wire_size``, the WireCodec-derived on-the-wire
byte count), so destination-shard byte accounting matches the single-process
emulator exactly.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Optional

FRAME_HEADER = struct.Struct("!BIQ")
PACKET_HEADER = struct.Struct("!dIIQI")

#: Frame types.
FRAME_PACKETS = 1   # worker -> parent, then parent -> worker, every window
FRAME_PAYLOAD = 2   # worker -> parent: final per-shard metric payload
FRAME_ERROR = 3     # worker -> parent: pickled traceback text


class MailboxClosed(ConnectionError):
    """The peer closed its end of the pipe (worker death or parent exit)."""


class Endpoint:
    """One end of a bidirectional parent<->worker pipe pair."""

    def __init__(self, read_fd: int, write_fd: int) -> None:
        self._read_fd = read_fd
        self._write_fd = write_fd

    def send(self, frame_type: int, window: int, payload: bytes) -> None:
        data = FRAME_HEADER.pack(frame_type, window, len(payload)) + payload
        view = memoryview(data)
        while view:
            written = os.write(self._write_fd, view)
            view = view[written:]

    def recv(self) -> tuple[int, int, bytes]:
        """Read one frame; raises :class:`MailboxClosed` on EOF."""
        header = self._read_exact(FRAME_HEADER.size)
        frame_type, window, length = FRAME_HEADER.unpack(header)
        payload = self._read_exact(length) if length else b""
        return frame_type, window, payload

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = os.read(self._read_fd, remaining)
            if not chunk:
                raise MailboxClosed("pipe closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:
                pass


def pipe_pair() -> tuple[Endpoint, Endpoint]:
    """Create a connected (parent_endpoint, worker_endpoint) pair.

    Each direction is its own ``os.pipe``; the caller closes the unused ends
    after forking (``Endpoint.close`` on the copy it does not keep).
    """
    parent_read, worker_write = os.pipe()
    worker_read, parent_write = os.pipe()
    return (Endpoint(parent_read, parent_write),
            Endpoint(worker_read, worker_write))


# ------------------------------------------------------------- packet batches
def pack_packets(entries: list[tuple[float, int, int, int, Any]]) -> bytes:
    """Encode ``(arrival_time, src_shard, dst_host, seq, packet)`` entries."""
    parts = []
    for arrival, src_shard, dst_host, seq, packet in entries:
        blob = pickle.dumps(packet, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(PACKET_HEADER.pack(arrival, src_shard, dst_host, seq,
                                        len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_packets(payload: bytes) -> list[tuple[float, int, int, int, Any]]:
    """Decode :func:`pack_packets` output, preserving entry order."""
    entries = []
    offset = 0
    size = PACKET_HEADER.size
    while offset < len(payload):
        arrival, src_shard, dst_host, seq, blob_len = PACKET_HEADER.unpack_from(
            payload, offset)
        offset += size
        packet = pickle.loads(payload[offset:offset + blob_len])
        offset += blob_len
        entries.append((arrival, src_shard, dst_host, seq, packet))
    return entries


def split_packets(payload: bytes) -> list[tuple[float, int, int, int, bytes]]:
    """Split a batch into ``(arrival, src_shard, dst_host, seq, raw)`` entries
    *without* unpickling the packets.

    ``raw`` is the complete header+blob byte span of one entry, so the
    coordinating parent can route and deterministically sort cross-shard
    packets and re-emit them by concatenation — the pickle payloads only ever
    deserialize on the destination shard.
    """
    entries = []
    offset = 0
    size = PACKET_HEADER.size
    while offset < len(payload):
        arrival, src_shard, dst_host, seq, blob_len = PACKET_HEADER.unpack_from(
            payload, offset)
        end = offset + size + blob_len
        entries.append((arrival, src_shard, dst_host, seq, payload[offset:end]))
        offset = end
    return entries


def merge_arrivals(
    batches: list[list[tuple[float, int, int, int, Any]]],
) -> list[tuple[float, int, int, int, Any]]:
    """Deterministic barrier merge: sort on ``(arrival, src_shard, seq)``.

    ``seq`` is a per-(src shard -> dst shard) counter, so the triple is
    unique and the sort never compares packets; the merged order is a pure
    function of the packets exchanged, independent of pipe readiness or
    worker scheduling.
    """
    merged = [entry for batch in batches for entry in batch]
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[3]))
    return merged


# ------------------------------------------------------------ object payloads
def pack_object(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_object(payload: bytes) -> Any:
    return pickle.loads(payload)


# ----------------------------------------------------------------- fork_map
def fork_map(fn, items, *, jobs: int, label: str = "worker") -> list:
    """Map *fn* over *items* in forked child processes, *jobs* at a time.

    The fork-based sibling of ``multiprocessing.Pool.map`` for callables and
    items that are not picklable (scenario specs carry lambdas): children
    inherit everything by fork and only the *results* travel back through a
    pipe.  Results are returned in item order.  A child that raises ships the
    traceback text back and :func:`fork_map` re-raises it in the parent as
    :class:`ForkWorkerError` — an unhandled worker exception is never
    silently swallowed.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: list = [None] * len(items)
    pending = list(enumerate(items))
    active: list[tuple[int, int, int]] = []  # (pid, index, read_fd), FIFO

    def launch(index: int, item) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            status = 0
            try:
                try:
                    blob = pack_object(("ok", fn(item)))
                except BaseException:
                    import traceback
                    blob = pack_object(("error", traceback.format_exc()))
                    status = 1
                view = memoryview(struct.pack("!Q", len(blob)) + blob)
                while view:
                    view = view[os.write(write_fd, view):]
            finally:
                os._exit(status)
        os.close(write_fd)
        active.append((pid, index, read_fd))

    def reap_oldest() -> None:
        # Drain the pipe to EOF *before* waitpid: a child whose result
        # exceeds the pipe buffer blocks in write until we read, so waiting
        # on its exit first would deadlock.  Children finishing out of order
        # merely queue behind the oldest pipe; no cycle, no deadlock.
        pid, index, read_fd = active.pop(0)
        chunks = []
        while True:
            chunk = os.read(read_fd, 1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
        os.close(read_fd)
        os.waitpid(pid, 0)
        data = b"".join(chunks)
        if len(data) < 8:
            raise ForkWorkerError(
                f"{label} for item {index} died without reporting a result")
        (length,) = struct.unpack("!Q", data[:8])
        kind, value = unpack_object(data[8:8 + length])
        if kind == "error":
            raise ForkWorkerError(
                f"{label} for item {index} raised:\n{value}")
        results[index] = value

    try:
        while pending or active:
            while pending and len(active) < jobs:
                index, item = pending.pop(0)
                launch(index, item)
            if active:
                reap_oldest()
    finally:
        for pid, _index, read_fd in active:
            try:
                os.close(read_fd)
            except OSError:
                pass
            try:
                os.kill(pid, 9)
                os.waitpid(pid, 0)
            except (OSError, ChildProcessError):
                pass
    return results


class ForkWorkerError(RuntimeError):
    """A forked worker process raised an unhandled exception."""


def host_provenance() -> dict[str, Any]:
    """CPU model, core count, load average, and Python version of this host.

    Recorded alongside every benchmark entry so absolute-rate swings can be
    attributed to runner hardware or contention rather than code changes.
    """
    import platform
    import sys

    cpu_model: Optional[str] = None
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    if cpu_model is None:
        cpu_model = platform.processor() or platform.machine() or "unknown"
    try:
        load_1m = os.getloadavg()[0]
    except OSError:
        load_1m = None
    return {
        "cpu_model": cpu_model,
        "cores": os.cpu_count(),
        "load_1m": load_1m,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
