"""Sharded parallel simulation: a multi-process conservative-lockstep kernel.

The single-process :class:`~repro.runtime.engine.Simulator` tops out around
tens of thousands of events per second, which caps the overlay populations the
evaluation can reach.  This package partitions one emulated deployment across
N worker processes along the transit-stub topology's stub-domain structure
(most overlay traffic is domain-local, so most packets stay shard-local) and
runs the shards in *conservative lockstep windows* bounded by the minimum
cross-shard link latency: inside a window no shard can possibly affect
another, so each worker burns through its own event heap at full speed and
cross-shard packets are exchanged only at window barriers.

Layout:

* :mod:`~repro.runtime.sharded.partition` — stub-domain partitioner and the
  lookahead (window width) computation.
* :mod:`~repro.runtime.sharded.mailbox` — pipe endpoints, length-prefixed
  binary framing, and the batched cross-shard packet codec.
* :mod:`~repro.runtime.sharded.driver` — :class:`ShardedDriver` (the third
  implementation of the :class:`~repro.runtime.driver.Driver` contract,
  wrapping one shard's simulator in the window/barrier loop) and
  :class:`ShardCoordinator` (the parent-side fork/barrier/merge orchestrator).

Determinism contract: ``shards=1`` is byte-identical to the single-process
kernel, and ``shards=K`` is fingerprint-stable across repeated runs and
across K — see docs/PERFORMANCE.md, "Sharded execution".
"""

from .driver import ShardCoordinator, ShardedDriver, ShardWorkerError
from .partition import ShardPlan, plan_shards, stub_domains

__all__ = [
    "ShardCoordinator",
    "ShardedDriver",
    "ShardWorkerError",
    "ShardPlan",
    "plan_shards",
    "stub_domains",
]
