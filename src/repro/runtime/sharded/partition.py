"""Stub-domain host partitioning and lookahead for the sharded kernel.

The transit-stub generator (:func:`repro.network.topology.transit_stub_topology`)
already exposes the natural cut: every client host hangs off exactly one stub
domain (a small clique of ``role == "stub"`` routers), stub domains only reach
each other through the transit core, and consecutive overlay node indices land
in *different* domains (clients attach round-robin).  Partitioning whole
domains onto shards therefore keeps every intra-domain packet shard-local
while spreading the overlay population evenly.

Domains are the connected components of the stub-router subgraph — the same
computation :class:`repro.eval.scenario.CorrelatedCrashModel` uses for its
failure domains, so a "shard" here is exactly a "failure domain" there.
Topologies without stub routers (multi-site, dumbbell) fall back to grouping
clients by access router, and a topology with fewer domains than requested
shards cleanly degrades to ``effective shards = num_domains``.

The *lookahead* is the conservative window width: the minimum underlay
latency between any two hosts on different shards.  A packet sent during the
window ``(B - W, B]`` arrives no earlier than ``send_time + W > B``, so no
destination shard has simulated past its arrival when the barrier at ``B``
exchanges it.  Queueing and transmission delays only add to path latency, so
the pure propagation distance is a valid lower bound.  A multiplicative
safety margin absorbs the float difference between the emulator's per-hop
delay accumulation and Dijkstra's summed distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...network.router import Router
from ...network.topology import ROLE_ATTR, Topology

#: The emulator accumulates per-hop delays in send order while the planner
#: sums edge latencies in Dijkstra order; both are float sums of the same
#: terms and can differ by an ulp.  Shrinking the window by one part per
#: billion keeps the conservative guarantee strict.
LOOKAHEAD_SAFETY = 1.0 - 1e-9


class ShardPlanError(ValueError):
    """Raised when a shard plan cannot be built for a topology."""


@dataclass
class ShardPlan:
    """The partition of one experiment's hosts across worker shards."""

    #: Shard count the caller asked for.
    requested_shards: int
    #: Effective shard count after the degenerate-topology fallback.
    num_shards: int
    #: Domain index of every client host (client address -> domain).
    domain_of_host: dict[int, int]
    #: Shard owning each domain (domain index -> shard).
    shard_of_domain: list[int]
    #: Shard owning each client host (client address -> shard).
    shard_of_host: dict[int, int]
    #: Shard owning each overlay node index (node index -> shard).
    shard_of_node: list[int]
    #: Conservative window width in seconds (``inf`` for a single shard).
    lookahead: float = float("inf")
    #: Client-host count per shard (diagnostics / balance assertions).
    hosts_per_shard: list[int] = field(default_factory=list)

    def owns(self, shard: int, node_index: int) -> bool:
        return self.shard_of_node[node_index] == shard

    def owned_nodes(self, shard: int) -> list[int]:
        return [i for i, s in enumerate(self.shard_of_node) if s == shard]


def stub_domains(topology: Topology) -> list[frozenset[int]]:
    """Stub domains of *topology*: connected components of the stub subgraph.

    Mirrors ``CorrelatedCrashModel.failure_domains`` — deterministic order
    (components sorted by their sorted member lists).  Empty for topologies
    without stub-role routers.
    """
    graph = topology.graph
    stubs = {node for node, data in graph.nodes(data=True)
             if data.get(ROLE_ATTR) == "stub"}
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in sorted(stubs):
        if start in seen:
            continue
        component = []
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor in stubs and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(sorted(component))
    components.sort()
    return [frozenset(component) for component in components]


def _client_domains(topology: Topology) -> tuple[dict[int, int], int]:
    """Map every client host to a domain index.

    Clients follow their access router: a client adjacent to a stub router
    belongs to that router's stub domain.  Clients attached to non-stub
    routers (multi-site gateways, dumbbell access routers) fall back to one
    pseudo-domain per access router, so such topologies still partition along
    their natural site boundaries.
    """
    graph = topology.graph
    domains = stub_domains(topology)
    router_domain: dict[int, int] = {}
    for index, members in enumerate(domains):
        for router in members:
            router_domain[router] = index
    next_domain = len(domains)
    pseudo: dict[int, int] = {}  # access router -> pseudo-domain index
    domain_of_host: dict[int, int] = {}
    for client in topology.clients:
        domain = None
        for neighbor in graph.neighbors(client):
            if neighbor in router_domain:
                domain = router_domain[neighbor]
                break
        if domain is None:
            # No stub-role access router: group by the (sorted-first)
            # neighboring router so co-located clients stay together.
            access = min(graph.neighbors(client), default=None)
            if access is None:
                raise ShardPlanError(
                    f"client {client} has no access link in topology "
                    f"{topology.name!r}")
            if access not in pseudo:
                pseudo[access] = next_domain
                next_domain += 1
            domain = pseudo[access]
        domain_of_host[client] = domain
    return domain_of_host, next_domain


def _assign_domains(domain_clients: list[int], num_shards: int) -> list[int]:
    """Balanced deterministic domain -> shard assignment.

    Greedy bin packing: domains in descending used-client count (ties broken
    by domain index) onto the currently lightest shard (ties broken by shard
    id).  Deterministic given the deterministic domain order.
    """
    order = sorted(range(len(domain_clients)),
                   key=lambda d: (-domain_clients[d], d))
    load = [0] * num_shards
    shard_of_domain = [0] * len(domain_clients)
    for domain in order:
        shard = min(range(num_shards), key=lambda s: (load[s], s))
        shard_of_domain[domain] = shard
        load[shard] += domain_clients[domain]
    return shard_of_domain


def _cross_shard_lookahead(topology: Topology, shard_of_host: dict[int, int],
                           num_shards: int) -> float:
    """Minimum underlay latency between hosts on different shards.

    Delegates to :meth:`repro.network.router.Router.min_cross_latency` (one
    multi-source Dijkstra per shard over the latency-weighted graph) — a few
    milliseconds even for thousand-client graphs, paid once per run.
    """
    if num_shards <= 1:
        return float("inf")
    groups: list[list[int]] = [[] for _ in range(num_shards)]
    for host, shard in shard_of_host.items():
        groups[shard].append(host)
    best = Router(topology).min_cross_latency(groups)
    if best == float("inf"):
        # No cross-shard host pair is reachable (e.g. every used host landed
        # on one shard): no cross-shard traffic is possible, so the window
        # may be unbounded.
        return best
    if best <= 0.0:
        raise ShardPlanError(
            f"could not derive a positive cross-shard lookahead for "
            f"topology {topology.name!r} (got {best})")
    return best * LOOKAHEAD_SAFETY


def plan_shards(topology: Topology, num_nodes: int,
                shards: int) -> ShardPlan:
    """Partition the first *num_nodes* client hosts of *topology* across
    *shards* worker processes.

    Every host is assigned to exactly one shard, stub domains are never
    split, and clients follow their access router's domain.  Requesting more
    shards than the topology has domains degrades to one shard per domain;
    requesting one shard yields the trivial plan (infinite lookahead, no
    cross-shard traffic).
    """
    if shards < 1:
        raise ShardPlanError(f"shards must be >= 1, got {shards}")
    if num_nodes > len(topology.clients):
        raise ShardPlanError(
            f"num_nodes={num_nodes} exceeds the {len(topology.clients)} "
            f"client hosts of topology {topology.name!r}")
    domain_of_host, num_domains = _client_domains(topology)
    used_clients = topology.clients[:num_nodes]
    num_shards = max(1, min(shards, num_domains))
    domain_clients = [0] * num_domains
    for client in used_clients:
        domain_clients[domain_of_host[client]] += 1
    shard_of_domain = _assign_domains(domain_clients, num_shards)
    shard_of_host = {client: shard_of_domain[domain]
                     for client, domain in domain_of_host.items()}
    shard_of_node = [shard_of_host[client] for client in used_clients]
    hosts_per_shard = [0] * num_shards
    for client in used_clients:
        hosts_per_shard[shard_of_host[client]] += 1
    used_shard_of_host = {client: shard_of_host[client]
                          for client in used_clients}
    lookahead = _cross_shard_lookahead(topology, used_shard_of_host,
                                       num_shards)
    return ShardPlan(
        requested_shards=shards,
        num_shards=num_shards,
        domain_of_host=domain_of_host,
        shard_of_domain=shard_of_domain,
        shard_of_host=shard_of_host,
        shard_of_node=shard_of_node,
        lookahead=lookahead,
        hosts_per_shard=hosts_per_shard,
    )
