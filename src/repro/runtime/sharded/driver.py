"""The sharded execution driver and its parent-side coordinator.

:class:`ShardedDriver` is the third implementation of the
:class:`~repro.runtime.driver.Driver` contract, next to the discrete-event
:class:`~repro.runtime.engine.Simulator` and the wall-clock
:class:`repro.live.driver.LiveDriver`: inside one worker process it *is* the
shard's simulated clock (delegating the scheduling surface to the shard's
simulator, exactly like :class:`~repro.runtime.driver.SimDriver`), extended
with the cross-shard machinery — an egress capture buffer for packets whose
destination lives on another shard, and the conservative window loop that
alternates bounded ``run(until=barrier)`` calls with barrier exchanges over
the mailbox.

:class:`ShardCoordinator` is the parent side: it forks one worker per shard
(*after* the experiment is fully built, so workers inherit the whole object
graph copy-on-write and nothing needs pickling on the way in), then plays
post office at every barrier — reading each shard's outbound batch, routing
entries by destination shard *without* unpickling them, sorting each inbox
deterministically on ``(arrival time, src shard, seq)``, and writing the
merged batches back.  After the last barrier it collects one pickled metric
payload per shard.  Any worker exception travels back as a pickled traceback
and re-raises here as :class:`ShardWorkerError` — a crashed shard can never
silently yield a partial result.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from ..driver import SimDriver
from ..engine import Simulator
from . import mailbox
from .mailbox import Endpoint, MailboxClosed
from .partition import ShardPlan


class ShardWorkerError(RuntimeError):
    """A shard worker process failed; the message carries its traceback."""


def barrier_schedule(start: float, until: float, window: float) -> list[float]:
    """The barrier times of a conservative lockstep run.

    Computed once by the coordinator *before* forking, so parent and workers
    share the identical float sequence by construction.  Always contains at
    least the final barrier at *until*, keeping the frame protocol uniform
    even for zero-length or single-window runs.
    """
    barriers: list[float] = []
    time = start
    while time < until:
        time = until if window == float("inf") else min(time + window, until)
        barriers.append(time)
    if not barriers:
        barriers.append(until)
    return barriers


class ShardedDriver(SimDriver):
    """One shard's clock plus its cross-shard egress and window loop.

    Satisfies the driver contract by delegation to the shard's simulator
    (same bound-method rebinding as :class:`SimDriver`, so the hot paths pay
    nothing); the additions are :meth:`capture` — called by the emulator's
    egress filter with packets bound for other shards — and
    :meth:`run_windows`, the worker half of the barrier protocol.
    """

    def __init__(self, simulator: Simulator, *, shard_id: int,
                 plan: ShardPlan, endpoint: Endpoint,
                 registry: Optional[Any] = None) -> None:
        super().__init__(simulator)
        self.shard_id = shard_id
        self.plan = plan
        self.endpoint = endpoint
        #: Optional metrics registry (``repro.obs``): when present the
        #: window loop accounts barriers and cross-shard batch sizes.
        self._registry = registry
        #: Outbound cross-shard packets of the current window:
        #: (arrival_time, src_shard, dst_host, seq, packet).
        self._outbox: list[tuple[float, int, int, int, Any]] = []
        #: Per-destination-shard sequence counters; (src_shard, seq) pairs
        #: give the deterministic barrier-merge order its unique tie-break.
        self._out_seq: dict[int, int] = {}
        #: Cross-shard traffic counters (diagnostics and bench reporting).
        self.packets_exported = 0
        self.packets_imported = 0

    # ----------------------------------------------------------------- egress
    def capture(self, arrival: float, dst_shard: int, dst_host: int,
                packet: Any) -> None:
        """Buffer a packet bound for *dst_shard* until the next barrier."""
        seq = self._out_seq.get(dst_shard, 0)
        self._out_seq[dst_shard] = seq + 1
        self._outbox.append((arrival, self.shard_id, dst_host, seq, packet))
        self.packets_exported += 1

    # ------------------------------------------------------------ window loop
    def run_windows(self, barriers: list[float],
                    inject: Callable[[float, Any], None]) -> float:
        """Run the shard through every conservative window.

        At each barrier the current outbox is shipped to the coordinator and
        the merged inbox injected via *inject*\\(delay, packet) — the caller
        supplies the delivery scheduling (the emulator's ``_deliver`` path),
        keeping this loop free of network-layer knowledge.  An arrival in the
        simulated past means the lookahead guarantee was violated (it cannot
        happen while window width <= minimum cross-shard latency) and raises
        :class:`ShardWorkerError` rather than corrupting causality.
        """
        sim = self.simulator
        run_windows = getattr(sim, "run_windows", None)
        if run_windows is None:  # pragma: no cover - simulator always has it
            raise ShardWorkerError("simulator lacks windowed execution")

        registry = self._registry

        def on_barrier(barrier: float, index: int) -> None:
            outbox = self._outbox
            if registry is not None:
                registry.counter("shard.windows").inc()
                registry.histogram("shard.batch_size").observe(len(outbox))
            payload = mailbox.pack_packets(outbox)
            outbox.clear()
            self.endpoint.send(mailbox.FRAME_PACKETS, index, payload)
            frame_type, window, data = self.endpoint.recv()
            if frame_type != mailbox.FRAME_PACKETS or window != index:
                raise ShardWorkerError(
                    f"shard {self.shard_id}: unexpected frame "
                    f"(type={frame_type}, window={window}) at barrier {index}")
            now = sim._now
            for arrival, _src_shard, _dst_host, _seq, packet in \
                    mailbox.unpack_packets(data):
                delay = arrival - now
                if delay < 0.0:
                    raise ShardWorkerError(
                        f"shard {self.shard_id}: lookahead violation — "
                        f"arrival {arrival!r} is {-delay!r}s before barrier "
                        f"{barrier!r}")
                inject(delay, packet)
                self.packets_imported += 1

        return run_windows(barriers, on_barrier)


class ShardCoordinator:
    """Fork workers, referee every barrier, and gather the final payloads."""

    def __init__(self, plan: ShardPlan, *, start: float, duration: float,
                 shard_of_address: Optional[dict[int, int]] = None) -> None:
        self.plan = plan
        self.barriers = barrier_schedule(start, start + duration,
                                         plan.lookahead)
        #: Routing map for barrier exchange: captured packets address their
        #: destination by runtime *host address* (what ``packet.dst`` holds),
        #: not by topology index, so the experiment builder must hand the
        #: coordinator the address -> shard map it derived from the plan.
        self.shard_of_address = shard_of_address

    def run(self, worker_fn: Callable[[int, Endpoint, list[float]], Any],
            ) -> list[Any]:
        """Execute *worker_fn* in one forked process per shard.

        ``worker_fn(shard_id, endpoint, barriers)`` runs in the child, must
        drive the barrier protocol (one PACKETS exchange per barrier — see
        :meth:`ShardedDriver.run_windows`), and returns the shard's metric
        payload, which is pickled back.  Returns the payload list indexed by
        shard.  Raises :class:`ShardWorkerError` if any worker raises or
        dies; remaining workers are killed, never leaked.
        """
        plan = self.plan
        num_shards = plan.num_shards
        workers: list[tuple[int, Endpoint]] = []  # (pid, parent endpoint)
        try:
            for shard in range(num_shards):
                parent_ep, worker_ep = mailbox.pipe_pair()
                pid = os.fork()
                if pid == 0:
                    status = 0
                    try:
                        # The child only talks through its own endpoint.
                        parent_ep.close()
                        for _pid, other_ep in workers:
                            other_ep.close()
                        try:
                            payload = worker_fn(shard, worker_ep,
                                                self.barriers)
                            worker_ep.send(mailbox.FRAME_PAYLOAD, 0,
                                           mailbox.pack_object(payload))
                        except BaseException:
                            import traceback
                            status = 1
                            try:
                                worker_ep.send(
                                    mailbox.FRAME_ERROR, 0,
                                    mailbox.pack_object(
                                        traceback.format_exc()))
                            except OSError:
                                pass
                    finally:
                        os._exit(status)
                worker_ep.close()
                workers.append((pid, parent_ep))

            shard_of_address = self.shard_of_address or {}
            for index in range(len(self.barriers)):
                inboxes: list[list] = [[] for _ in range(num_shards)]
                for shard, (_pid, endpoint) in enumerate(workers):
                    data = self._recv(endpoint, shard, mailbox.FRAME_PACKETS,
                                      index)
                    for entry in mailbox.split_packets(data):
                        try:
                            dst_shard = shard_of_address[entry[2]]
                        except KeyError:
                            raise ShardWorkerError(
                                f"shard worker {shard} exported a packet for "
                                f"unknown address {entry[2]} — routing map "
                                f"incomplete") from None
                        inboxes[dst_shard].append(entry)
                for shard, (_pid, endpoint) in enumerate(workers):
                    inbox = inboxes[shard]
                    # Deterministic merge: (arrival, src shard, seq) is
                    # unique, so the inbox order is a pure function of the
                    # packets, not of pipe readiness.
                    inbox.sort(key=lambda entry: (entry[0], entry[1],
                                                  entry[3]))
                    endpoint.send(mailbox.FRAME_PACKETS, index,
                                  b"".join(entry[4] for entry in inbox))

            payloads = []
            for shard, (_pid, endpoint) in enumerate(workers):
                data = self._recv(endpoint, shard, mailbox.FRAME_PAYLOAD, 0)
                payloads.append(mailbox.unpack_object(data))
            return payloads
        finally:
            for pid, endpoint in workers:
                endpoint.close()
            for pid, _endpoint in workers:
                try:
                    os.kill(pid, 9)
                except OSError:
                    pass
                try:
                    os.waitpid(pid, 0)
                except (OSError, ChildProcessError):
                    pass

    @staticmethod
    def _recv(endpoint: Endpoint, shard: int, expected_type: int,
              expected_window: int) -> bytes:
        try:
            frame_type, window, data = endpoint.recv()
        except MailboxClosed as exc:
            raise ShardWorkerError(
                f"shard worker {shard} died without reporting "
                f"(window {expected_window})") from exc
        if frame_type == mailbox.FRAME_ERROR:
            raise ShardWorkerError(
                f"shard worker {shard} raised:\n"
                f"{mailbox.unpack_object(data)}")
        if frame_type != expected_type or window != expected_window:
            raise ShardWorkerError(
                f"shard worker {shard}: protocol violation — got frame "
                f"type {frame_type} window {window}, expected type "
                f"{expected_type} window {expected_window}")
        return data
