"""Typed protocol messages.

A ``mac`` specification declares its messages, each bound to a transport
instance (lowest layer) or service class (higher layers)::

    messages {
        BEST_EFFORT join { }
        HIGHEST join_reply { int response; }
    }

The runtime turns each declaration into a :class:`MessageType` with typed
fields.  Field types drive the on-the-wire size model so the emulator charges
realistic bytes for control traffic, and the generated code accesses fields
either as attributes (``msg.response``) or through the paper's ``field()``
primitive.

Message construction is protocol-plane hot-path work — one instance per send
on every node — so the classes here are compiled once per type and slotted:

* :class:`MessageType` resolves its size model at spec-compile time: the
  fixed wire size (header + every scalar field) is precomputed, and only
  list/string fields — the ones whose size depends on the value — are
  visited per send.  Unknown field types are rejected *here*, when the spec
  compiles, not silently defaulted at send time.
* :class:`Message` is a ``__slots__`` envelope with a lazy ``msg_id`` (the
  process-wide counter is only consumed if somebody reads it) and a size
  memoised on first read.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Optional

#: Serialized size, in bytes, of each supported field type.
FIELD_TYPE_SIZES: dict[str, int] = {
    "int": 4,
    "long": 8,
    "double": 8,
    "float": 4,
    "bool": 1,
    "key": 4,
    "ipaddr": 4,
    "string": 16,
    "neighbor": 8,
}

#: Fixed per-message envelope overhead (type tag, source, protocol id).
MESSAGE_HEADER_BYTES = 16


class MessageError(ValueError):
    """Raised for unknown message types, field types, or malformed access."""


class FieldSpec:
    """One declared field of a message type."""

    __slots__ = ("name", "type_name", "is_list")

    def __init__(self, name: str, type_name: str, is_list: bool = False) -> None:
        self.name = name
        self.type_name = type_name
        #: For list-typed fields ("neighbor list", "int list"), the element type.
        self.is_list = is_list

    def size_of(self, value: Any) -> int:
        try:
            base = FIELD_TYPE_SIZES[self.type_name]
        except KeyError:
            raise MessageError(
                f"field {self.name!r} has unknown type {self.type_name!r} "
                f"(known: {sorted(FIELD_TYPE_SIZES)})"
            ) from None
        if self.is_list:
            try:
                length = len(value)
            except TypeError:
                length = 0
            return 4 + base * length
        if self.type_name == "string" and isinstance(value, str):
            return max(1, len(value.encode("utf-8")))
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = " list" if self.is_list else ""
        return f"FieldSpec({self.name!r}, {self.type_name!r}{suffix})"


class MessageType:
    """A declared message type: name, fields, and default transport binding.

    The wire-size model is compiled once, at construction: scalar fields sum
    into :attr:`fixed_size` and only value-dependent fields (lists, strings)
    remain in the per-send loop.  A field with a type the size model does not
    know is a specification bug and raises :class:`MessageError` here — at
    spec-compile time — rather than silently charging a default at send time.
    """

    __slots__ = ("name", "fields", "transport", "fixed_size",
                 "_var_specs", "_names")

    def __init__(self, name: str, fields: tuple = (),
                 transport: Optional[str] = None) -> None:
        self.name = name
        self.fields: tuple[FieldSpec, ...] = tuple(fields)
        self.transport = transport
        fixed = MESSAGE_HEADER_BYTES
        var_specs = []
        for spec in self.fields:
            base = FIELD_TYPE_SIZES.get(spec.type_name)
            if base is None:
                raise MessageError(
                    f"message {name!r} field {spec.name!r} has unknown type "
                    f"{spec.type_name!r} (known: {sorted(FIELD_TYPE_SIZES)})"
                )
            if spec.is_list or spec.type_name == "string":
                var_specs.append((spec.name, spec.is_list, base))
            else:
                fixed += base
        #: Wire size shared by every instance: header plus all scalar fields.
        self.fixed_size = fixed
        self._var_specs = tuple(var_specs)
        self._names = frozenset(spec.name for spec in self.fields)

    def field_names(self) -> list[str]:
        return [spec.name for spec in self.fields]

    def validate_fields(self, values: Mapping[str, Any]) -> None:
        names = self._names
        for key in values:
            if key not in names:
                unknown = sorted(set(values) - names)
                raise MessageError(
                    f"message {self.name!r} has no field(s) {unknown} "
                    f"(declared: {sorted(names)})"
                )

    def size_of(self, values: Mapping[str, Any], payload_size: int = 0) -> int:
        total = self.fixed_size + payload_size
        for name, is_list, base in self._var_specs:
            value = values.get(name)
            if is_list:
                try:
                    length = len(value)
                except TypeError:
                    length = 0
                total += 4 + base * length
            elif isinstance(value, str):   # variable-width string scalar
                encoded = len(value.encode("utf-8"))
                total += encoded if encoded else 1
            else:
                total += base
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MessageType({self.name!r}, {len(self.fields)} fields, "
                f"transport={self.transport!r})")


_message_ids = itertools.count(1)


class Message:
    """An instance of a message type travelling between two overlay nodes.

    ``fields`` holds the declared field values; ``payload`` carries opaque
    application data (or a wrapped higher-layer message) of ``payload_size``
    bytes.  ``source`` is filled by the runtime on reception with the sender's
    host address, matching the paper's implicit ``from`` variable.

    A slotted envelope: the wire size is memoised on first read (the type's
    precomputed fixed size plus the value-dependent fields), and ``msg_id``
    draws from the process-wide counter lazily, only if somebody asks.
    """

    __slots__ = ("type", "fields", "payload", "payload_size", "priority",
                 "source", "dest", "dest_key", "protocol", "_msg_id", "_size")

    def __init__(self, type: MessageType, fields: Optional[dict[str, Any]] = None,
                 payload: Any = None, payload_size: int = 0, priority: int = -1,
                 source: Optional[int] = None, dest: Optional[int] = None,
                 dest_key: Optional[int] = None, protocol: str = "",
                 msg_id: Optional[int] = None) -> None:
        if fields is None:
            fields = {}
        else:
            type.validate_fields(fields)
        self.type = type
        self.fields = fields
        self.payload = payload
        self.payload_size = payload_size
        self.priority = priority
        self.source = source
        self.dest = dest
        self.dest_key = dest_key
        self.protocol = protocol
        self._msg_id = msg_id
        self._size: Optional[int] = None

    @property
    def name(self) -> str:
        return self.type.name

    @property
    def msg_id(self) -> int:
        msg_id = self._msg_id
        if msg_id is None:
            msg_id = self._msg_id = next(_message_ids)
        return msg_id

    @property
    def size(self) -> int:
        size = self._size
        if size is None:
            size = self._size = self.type.size_of(self.fields, self.payload_size)
        return size

    def field(self, name: str) -> Any:
        """The paper's ``field()`` accessor."""
        if name not in self.type._names:
            raise MessageError(f"message {self.name!r} has no field {name!r}")
        return self.fields.get(name)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails: treat it as a field
        # access so generated code can write ``msg.response``.
        fields = object.__getattribute__(self, "fields")
        if name in fields:
            return fields[name]
        msg_type = object.__getattribute__(self, "type")
        if name in msg_type._names:
            return None
        raise AttributeError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.name!r}, fields={self.fields!r}, "
                f"source={self.source}, dest={self.dest})")


class WrappedMessage:
    """A higher-layer message carried as the payload of a lower-layer message.

    This is how protocol layering crosses the wire: Scribe's ``join`` control
    message, for example, travels as the payload of a Pastry route message and
    is unwrapped by the Scribe agent on the receiving stack.
    """

    __slots__ = ("protocol", "name", "fields", "payload", "payload_size",
                 "source", "source_key", "size")

    def __init__(self, protocol: str, name: str, fields: dict[str, Any],
                 payload: Any = None, payload_size: int = 0,
                 source: Optional[int] = None, source_key: Optional[int] = None,
                 size: int = 0) -> None:
        self.protocol = protocol
        self.name = name
        self.fields = fields
        self.payload = payload
        self.payload_size = payload_size
        self.source = source
        self.source_key = source_key
        self.size = size

    def as_message(self, message_type: MessageType) -> Message:
        # Copy the field dict: a fanned-out wrapped message (multicast) is
        # shared across deliveries, and each receiving agent gets its own
        # mutable view, exactly as if it had come off its own wire.
        return Message(
            type=message_type,
            fields=dict(self.fields),
            payload=self.payload,
            payload_size=self.payload_size,
            source=self.source,
            protocol=self.protocol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WrappedMessage({self.protocol!r}, {self.name!r}, "
                f"fields={self.fields!r})")


class MessageCatalog:
    """The set of message types declared by one protocol."""

    def __init__(self, types: Optional[list[MessageType]] = None) -> None:
        self._types: dict[str, MessageType] = {}
        for message_type in types or []:
            self.add(message_type)

    def add(self, message_type: MessageType) -> None:
        if message_type.name in self._types:
            raise MessageError(f"message {message_type.name!r} declared twice")
        self._types[message_type.name] = message_type

    def get(self, name: str) -> MessageType:
        try:
            return self._types[name]
        except KeyError as exc:
            raise MessageError(
                f"unknown message type {name!r} (declared: {sorted(self._types)})"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[MessageType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> list[str]:
        return sorted(self._types)
