"""Typed protocol messages.

A ``mac`` specification declares its messages, each bound to a transport
instance (lowest layer) or service class (higher layers)::

    messages {
        BEST_EFFORT join { }
        HIGHEST join_reply { int response; }
    }

The runtime turns each declaration into a :class:`MessageType` with typed
fields.  Field types drive the on-the-wire size model so the emulator charges
realistic bytes for control traffic, and the generated code accesses fields
either as attributes (``msg.response``) or through the paper's ``field()``
primitive.

Message construction is protocol-plane hot-path work — one instance per send
on every node — so the classes here are compiled once per type and slotted:

* :class:`MessageType` resolves its size model at spec-compile time: the
  fixed wire size (header + every scalar field) is precomputed, and only
  list/string fields — the ones whose size depends on the value — are
  visited per send.  Unknown field types are rejected *here*, when the spec
  compiles, not silently defaulted at send time.
* :class:`Message` is a ``__slots__`` envelope with a lazy ``msg_id`` (the
  process-wide counter is only consumed if somebody reads it) and a size
  memoised on first read.

The size model is no longer only a model: :class:`WireCodec` (bottom of this
module) turns it into a real byte-level encoding — struct-packed scalars,
length-prefixed lists and strings, recursively encoded wrapped messages —
whose encoded length **equals** the precomputed wire size, so the bytes a
live datagram carries are exactly the bytes the emulator charges in
simulation.  The codec is compiled lazily per message type and is used only
by the live-execution runtime (:mod:`repro.live`); simulated sends never
serialize.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from typing import Any, Iterator, Mapping, Optional

#: Serialized size, in bytes, of each supported fixed-width field type.
#: Strings are variable-width (4-byte length prefix + UTF-8 bytes) and are
#: sized by the var-field path, never by this table.
FIELD_TYPE_SIZES: dict[str, int] = {
    "int": 4,
    "long": 8,
    "double": 8,
    "float": 4,
    "bool": 1,
    "key": 4,
    "ipaddr": 4,
    "string": 4,   # length prefix; the UTF-8 bytes are charged per value
    "neighbor": 8,
}

#: Fixed per-message envelope overhead (type tag, source, protocol id).
MESSAGE_HEADER_BYTES = 16


class MessageError(ValueError):
    """Raised for unknown message types, field types, or malformed access."""


class FieldSpec:
    """One declared field of a message type."""

    __slots__ = ("name", "type_name", "is_list")

    def __init__(self, name: str, type_name: str, is_list: bool = False) -> None:
        self.name = name
        self.type_name = type_name
        #: For list-typed fields ("neighbor list", "int list"), the element type.
        self.is_list = is_list

    def size_of(self, value: Any) -> int:
        try:
            base = FIELD_TYPE_SIZES[self.type_name]
        except KeyError:
            raise MessageError(
                f"field {self.name!r} has unknown type {self.type_name!r} "
                f"(known: {sorted(FIELD_TYPE_SIZES)})"
            ) from None
        if self.is_list:
            if self.type_name == "string":
                return 4 + sum(4 + len(str(item).encode("utf-8"))
                               for item in (value or ()))
            try:
                length = len(value)
            except TypeError:
                length = 0
            return 4 + base * length
        if self.type_name == "string":
            return 4 + len(str(value or "").encode("utf-8"))
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = " list" if self.is_list else ""
        return f"FieldSpec({self.name!r}, {self.type_name!r}{suffix})"


class MessageType:
    """A declared message type: name, fields, and default transport binding.

    The wire-size model is compiled once, at construction: scalar fields sum
    into :attr:`fixed_size` and only value-dependent fields (lists, strings)
    remain in the per-send loop.  A field with a type the size model does not
    know is a specification bug and raises :class:`MessageError` here — at
    spec-compile time — rather than silently charging a default at send time.
    """

    __slots__ = ("name", "fields", "transport", "fixed_size",
                 "_var_specs", "_names", "_wire")

    def __init__(self, name: str, fields: tuple = (),
                 transport: Optional[str] = None) -> None:
        self.name = name
        self.fields: tuple[FieldSpec, ...] = tuple(fields)
        self.transport = transport
        fixed = MESSAGE_HEADER_BYTES
        var_specs = []
        for spec in self.fields:
            base = FIELD_TYPE_SIZES.get(spec.type_name)
            if base is None:
                raise MessageError(
                    f"message {name!r} field {spec.name!r} has unknown type "
                    f"{spec.type_name!r} (known: {sorted(FIELD_TYPE_SIZES)})"
                )
            if spec.is_list or spec.type_name == "string":
                var_specs.append((spec.name, spec.is_list, base,
                                  spec.type_name == "string"))
            else:
                fixed += base
        #: Wire size shared by every instance: header plus all scalar fields.
        self.fixed_size = fixed
        self._var_specs = tuple(var_specs)
        self._names = frozenset(spec.name for spec in self.fields)
        #: Lazily compiled field pack/unpack plan (see :class:`WireCodec`).
        self._wire: Optional[tuple] = None

    def field_names(self) -> list[str]:
        return [spec.name for spec in self.fields]

    def validate_fields(self, values: Mapping[str, Any]) -> None:
        names = self._names
        for key in values:
            if key not in names:
                unknown = sorted(set(values) - names)
                raise MessageError(
                    f"message {self.name!r} has no field(s) {unknown} "
                    f"(declared: {sorted(names)})"
                )

    def size_of(self, values: Mapping[str, Any], payload_size: int = 0) -> int:
        total = self.fixed_size + payload_size
        for name, is_list, base, is_string in self._var_specs:
            value = values.get(name)
            if is_list:
                if is_string:
                    total += 4 + sum(4 + len(str(item).encode("utf-8"))
                                     for item in (value or ()))
                    continue
                try:
                    length = len(value)
                except TypeError:
                    length = 0
                total += 4 + base * length
            else:   # variable-width string scalar: length prefix + UTF-8
                total += 4 + len(str(value or "").encode("utf-8"))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MessageType({self.name!r}, {len(self.fields)} fields, "
                f"transport={self.transport!r})")


_message_ids = itertools.count(1)


class Message:
    """An instance of a message type travelling between two overlay nodes.

    ``fields`` holds the declared field values; ``payload`` carries opaque
    application data (or a wrapped higher-layer message) of ``payload_size``
    bytes.  ``source`` is filled by the runtime on reception with the sender's
    host address, matching the paper's implicit ``from`` variable.

    A slotted envelope: the wire size is memoised on first read (the type's
    precomputed fixed size plus the value-dependent fields), and ``msg_id``
    draws from the process-wide counter lazily, only if somebody asks.
    """

    __slots__ = ("type", "fields", "payload", "payload_size", "priority",
                 "source", "dest", "dest_key", "protocol", "_msg_id", "_size")

    def __init__(self, type: MessageType, fields: Optional[dict[str, Any]] = None,
                 payload: Any = None, payload_size: int = 0, priority: int = -1,
                 source: Optional[int] = None, dest: Optional[int] = None,
                 dest_key: Optional[int] = None, protocol: str = "",
                 msg_id: Optional[int] = None) -> None:
        if fields is None:
            fields = {}
        else:
            type.validate_fields(fields)
        self.type = type
        self.fields = fields
        self.payload = payload
        self.payload_size = payload_size
        self.priority = priority
        self.source = source
        self.dest = dest
        self.dest_key = dest_key
        self.protocol = protocol
        self._msg_id = msg_id
        self._size: Optional[int] = None

    @property
    def name(self) -> str:
        return self.type.name

    @property
    def msg_id(self) -> int:
        msg_id = self._msg_id
        if msg_id is None:
            msg_id = self._msg_id = next(_message_ids)
        return msg_id

    @property
    def size(self) -> int:
        size = self._size
        if size is None:
            size = self._size = self.type.size_of(self.fields, self.payload_size)
        return size

    def field(self, name: str) -> Any:
        """The paper's ``field()`` accessor."""
        if name not in self.type._names:
            raise MessageError(f"message {self.name!r} has no field {name!r}")
        return self.fields.get(name)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails: treat it as a field
        # access so generated code can write ``msg.response``.
        fields = object.__getattribute__(self, "fields")
        if name in fields:
            return fields[name]
        msg_type = object.__getattribute__(self, "type")
        if name in msg_type._names:
            return None
        raise AttributeError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.name!r}, fields={self.fields!r}, "
                f"source={self.source}, dest={self.dest})")


class WrappedMessage:
    """A higher-layer message carried as the payload of a lower-layer message.

    This is how protocol layering crosses the wire: Scribe's ``join`` control
    message, for example, travels as the payload of a Pastry route message and
    is unwrapped by the Scribe agent on the receiving stack.
    """

    __slots__ = ("protocol", "name", "fields", "payload", "payload_size",
                 "source", "source_key", "size")

    def __init__(self, protocol: str, name: str, fields: dict[str, Any],
                 payload: Any = None, payload_size: int = 0,
                 source: Optional[int] = None, source_key: Optional[int] = None,
                 size: int = 0) -> None:
        self.protocol = protocol
        self.name = name
        self.fields = fields
        self.payload = payload
        self.payload_size = payload_size
        self.source = source
        self.source_key = source_key
        self.size = size

    def as_message(self, message_type: MessageType) -> Message:
        # Copy the field dict: a fanned-out wrapped message (multicast) is
        # shared across deliveries, and each receiving agent gets its own
        # mutable view, exactly as if it had come off its own wire.
        return Message(
            type=message_type,
            fields=dict(self.fields),
            payload=self.payload,
            payload_size=self.payload_size,
            source=self.source,
            protocol=self.protocol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WrappedMessage({self.protocol!r}, {self.name!r}, "
                f"fields={self.fields!r})")


class MessageCatalog:
    """The set of message types declared by one protocol."""

    def __init__(self, types: Optional[list[MessageType]] = None) -> None:
        self._types: dict[str, MessageType] = {}
        for message_type in types or []:
            self.add(message_type)

    def add(self, message_type: MessageType) -> None:
        if message_type.name in self._types:
            raise MessageError(f"message {message_type.name!r} declared twice")
        self._types[message_type.name] = message_type

    def get(self, name: str) -> MessageType:
        try:
            return self._types[name]
        except KeyError as exc:
            raise MessageError(
                f"unknown message type {name!r} (declared: {sorted(self._types)})"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[MessageType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> list[str]:
        return sorted(self._types)


# ======================================================================== wire
class WireError(MessageError):
    """Raised when a value cannot be encoded to (or decoded from) the wire."""


#: struct format character per fixed-width field type.  The packed widths are
#: exactly :data:`FIELD_TYPE_SIZES`, which is what makes encoded length equal
#: the precomputed size model (asserted at import below).
_SCALAR_FORMATS: dict[str, str] = {
    "int": "i",
    "long": "q",
    "double": "d",
    "float": "f",
    "bool": "?",
    "key": "I",
    "ipaddr": "I",
    "neighbor": "Q",
}

for _type_name, _fmt in _SCALAR_FORMATS.items():
    assert struct.calcsize("!" + _fmt) == FIELD_TYPE_SIZES[_type_name], _type_name

#: 32-bit unsigned types are masked (ring keys are already in range; masking
#: makes encode total); signed types raise WireError on overflow instead.
_MASKS = {"I": 0xFFFFFFFF, "Q": 0xFFFFFFFFFFFFFFFF}

_SCALAR_DEFAULTS_BY_FMT = {"i": 0, "q": 0, "d": 0.0, "f": 0.0, "?": False,
                           "I": 0, "Q": 0}

#: Message envelope: version, payload type tag, priority, protocol id,
#: message-type id, payload size.  Its packed width IS the size model's
#: MESSAGE_HEADER_BYTES (the "type tag, source, protocol id" overhead).
_MESSAGE_HEADER = struct.Struct("!BBhIII")
assert _MESSAGE_HEADER.size == MESSAGE_HEADER_BYTES

#: Wrapped-message envelope: payload type tag, protocol id, message-type id,
#: payload size (u16 — bounded by the live datagram cap), original source.
#: 15 bytes <= MESSAGE_HEADER_BYTES, so a wrapped message encodes within the
#: header budget its size model charges.
_WRAPPED_HEADER = struct.Struct("!BIIHI")
assert _WRAPPED_HEADER.size <= MESSAGE_HEADER_BYTES

_U32 = struct.Struct("!I")
_APP_PAYLOAD = struct.Struct("!qdQqq")   # seqno, sent_at, source, size, stream_id
# op, key, version, seqno, sent_at, source, replier, size, stream_id
_KV_PAYLOAD = struct.Struct("!BIqqdQQqq")
# topic, seqno, sent_at, source, size, stream_id
_TOPIC_PAYLOAD = struct.Struct("!IqdQqq")

WIRE_VERSION = 1

#: Largest encodable message.  This used to be the single-UDP-datagram
#: ceiling of live mode (60 000 bytes); the live socket layer now fragments
#: and reassembles oversized frames (:data:`repro.transport.udp.
#: FRAGMENT_THRESHOLD`), so the cap is only a runaway-allocation guard —
#: large payloads degrade to multiple datagrams instead of raising.
MAX_WIRE_SIZE = 16_000_000

# Payload type tags (the codec's closed set of payload classes).
_P_NONE = 0
_P_MESSAGE = 1
_P_WRAPPED = 2
_P_APP = 3
_P_BYTES = 4
_P_STR = 5
_P_INT = 6
_P_FLOAT = 7
_P_BOOL = 8
_P_HEARTBEAT = 9
_P_KV = 10
_P_TOPIC = 11


def wire_id(name: str) -> int:
    """Stable 32-bit identifier of a protocol or message-type name."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def _checked_slice(data: bytes, offset: int, length: int) -> bytes:
    """``data[offset:offset+length]``, loud when the buffer is short.

    A corrupt or truncated datagram whose length prefix points past the end
    must raise (and be counted as line noise by the socket layer), never
    silently yield a short value into the protocol stack.
    """
    end = offset + length
    if end > len(data):
        raise WireError(
            f"truncated wire data: need {length} bytes at offset {offset}, "
            f"buffer has {len(data)}")
    return data[offset:end]


def _compile_wire_plan(message_type: MessageType) -> tuple:
    """Compile a message type's fields into a pack/unpack plan.

    Consecutive fixed-width fields collapse into one :class:`struct.Struct`;
    lists and strings stay as per-value ops.  Ops are ``("scalars", Struct,
    names, formats)``, ``("list", name, Struct, default)``, ``("slist",
    name)``, or ``("string", name)``.
    """
    ops: list[tuple] = []
    run_names: list[str] = []
    run_fmt: list[str] = []

    def flush() -> None:
        if run_names:
            ops.append(("scalars", struct.Struct("!" + "".join(run_fmt)),
                        tuple(run_names), tuple(run_fmt)))
            run_names.clear()
            run_fmt.clear()

    for spec in message_type.fields:
        if spec.is_list:
            flush()
            if spec.type_name == "string":
                ops.append(("slist", spec.name))
            else:
                fmt = _SCALAR_FORMATS[spec.type_name]
                ops.append(("list", spec.name, struct.Struct("!" + fmt),
                            _SCALAR_DEFAULTS_BY_FMT[fmt]))
        elif spec.type_name == "string":
            flush()
            ops.append(("string", spec.name))
        else:
            run_names.append(spec.name)
            run_fmt.append(_SCALAR_FORMATS[spec.type_name])
    flush()
    return tuple(ops)


class WireCodec:
    """Byte-level codec for the message types of one protocol stack.

    Shared verbatim between the two execution modes: in simulation the size
    model (``MessageType.size_of``) *prices* each message, and in live mode
    this codec *materialises* it — for every supported payload shape the
    encoded length equals the priced length, so a live datagram occupies
    exactly the bytes the emulator would have charged.  Synthetic payload
    bytes (an ``AppPayload`` declared larger than its struct, or a ``None``
    payload with a declared size) are zero-padded onto the wire, exactly like
    the paper's generated traffic.

    The codec is constructed from the agent classes of one stack (every
    protocol whose messages may appear on the wire, including wrapped inner
    messages) and is symmetric: both ends of a connection must be built from
    the same specifications, which the live cluster guarantees by compiling
    the same registry stack in every process.
    """

    def __init__(self, catalogs: Mapping[str, MessageCatalog]) -> None:
        self._protocols: dict[int, tuple[str, dict[int, MessageType]]] = {}
        self._names: dict[str, int] = {}
        for protocol, catalog in catalogs.items():
            proto_id = wire_id(protocol)
            if proto_id in self._protocols:
                other = self._protocols[proto_id][0]
                raise WireError(
                    f"protocol id collision between {protocol!r} and {other!r}")
            types: dict[int, MessageType] = {}
            for message_type in catalog:
                type_id = wire_id(message_type.name)
                if type_id in types:
                    raise WireError(
                        f"message id collision in protocol {protocol!r}: "
                        f"{message_type.name!r} vs {types[type_id].name!r}")
                types[type_id] = message_type
            self._protocols[proto_id] = (protocol, types)
            self._names[protocol] = proto_id
        # Lazily imported payload classes (imports would cycle at module
        # scope: node/apps import this module).
        self._app_payload: Optional[type] = None
        self._heartbeat: Optional[type] = None
        self._kv_payload: Optional[type] = None
        self._topic_payload: Optional[type] = None

    @classmethod
    def for_agents(cls, agent_classes) -> "WireCodec":
        """Build a codec covering every protocol of a stack (lowest first)."""
        catalogs: dict[str, MessageCatalog] = {}
        for agent_class in agent_classes:
            catalogs[agent_class.PROTOCOL] = MessageCatalog(
                list(agent_class.MESSAGE_TYPES))
        return cls(catalogs)

    def protocols(self) -> list[str]:
        return sorted(self._names)

    # ---------------------------------------------------------------- lookup
    def _message_type(self, proto_id: int, type_id: int) -> tuple[str, MessageType]:
        entry = self._protocols.get(proto_id)
        if entry is None:
            raise WireError(
                f"unknown protocol id {proto_id:#x} on the wire "
                f"(codec knows: {self.protocols()}); both endpoints must be "
                f"built from the same specifications")
        protocol, types = entry
        message_type = types.get(type_id)
        if message_type is None:
            raise WireError(
                f"unknown message id {type_id:#x} for protocol {protocol!r} "
                f"(codec knows: {sorted(t.name for t in types.values())})")
        return protocol, message_type

    def _payload_classes(self) -> tuple[type, type]:
        if self._app_payload is None:
            from ..apps.payload import AppPayload, KvPayload, TopicPayload
            from .node import _Heartbeat
            self._app_payload = AppPayload
            self._heartbeat = _Heartbeat
            self._kv_payload = KvPayload
            self._topic_payload = TopicPayload
        return self._app_payload, self._heartbeat

    # ---------------------------------------------------------------- fields
    @staticmethod
    def _encode_fields(message_type: MessageType, values: Mapping[str, Any],
                       out: list) -> None:
        plan = message_type._wire
        if plan is None:
            plan = message_type._wire = _compile_wire_plan(message_type)
        try:
            for op in plan:
                kind = op[0]
                if kind == "scalars":
                    _, packer, names, formats = op
                    row = []
                    for name, fmt in zip(names, formats):
                        value = values.get(name)
                        if value is None:
                            value = _SCALAR_DEFAULTS_BY_FMT[fmt]
                        mask = _MASKS.get(fmt)
                        if mask is not None:
                            value = int(value) & mask
                        row.append(value)
                    out.append(packer.pack(*row))
                elif kind == "list":
                    _, name, packer, default = op
                    items = values.get(name) or ()
                    out.append(_U32.pack(len(items)))
                    pack = packer.pack
                    for item in items:
                        out.append(pack(default if item is None else item))
                elif kind == "string":
                    data = str(values.get(op[1]) or "").encode("utf-8")
                    out.append(_U32.pack(len(data)))
                    out.append(data)
                else:   # "slist"
                    items = values.get(op[1]) or ()
                    out.append(_U32.pack(len(items)))
                    for item in items:
                        data = str(item).encode("utf-8")
                        out.append(_U32.pack(len(data)))
                        out.append(data)
        except (struct.error, TypeError, ValueError) as exc:
            raise WireError(
                f"cannot encode message {message_type.name!r} fields "
                f"{dict(values)!r}: {exc}") from exc

    @staticmethod
    def _decode_fields(message_type: MessageType, data: bytes,
                       offset: int) -> tuple[dict[str, Any], int]:
        plan = message_type._wire
        if plan is None:
            plan = message_type._wire = _compile_wire_plan(message_type)
        fields: dict[str, Any] = {}
        try:
            for op in plan:
                kind = op[0]
                if kind == "scalars":
                    _, packer, names, _formats = op
                    row = packer.unpack_from(data, offset)
                    offset += packer.size
                    for name, value in zip(names, row):
                        fields[name] = value
                elif kind == "list":
                    _, name, packer, _default = op
                    (count,) = _U32.unpack_from(data, offset)
                    offset += 4
                    items = []
                    unpack = packer.unpack_from
                    width = packer.size
                    for _ in range(count):
                        items.append(unpack(data, offset)[0])
                        offset += width
                    fields[name] = items
                elif kind == "string":
                    (length,) = _U32.unpack_from(data, offset)
                    offset += 4
                    fields[op[1]] = _checked_slice(data, offset,
                                                   length).decode("utf-8")
                    offset += length
                else:   # "slist"
                    (count,) = _U32.unpack_from(data, offset)
                    offset += 4
                    items = []
                    for _ in range(count):
                        (length,) = _U32.unpack_from(data, offset)
                        offset += 4
                        items.append(_checked_slice(data, offset,
                                                    length).decode("utf-8"))
                        offset += length
                    fields[op[1]] = items
        except struct.error as exc:
            raise WireError(
                f"truncated wire data for message {message_type.name!r}: {exc}"
            ) from exc
        return fields, offset

    # -------------------------------------------------------------- messages
    def encode_message(self, message: Message) -> bytes:
        """Encode a protocol message; ``len(result) == message.size`` for
        every supported payload that fits its declared ``payload_size``."""
        proto_id = self._names.get(message.protocol)
        if proto_id is None:
            raise WireError(
                f"message {message.name!r} belongs to protocol "
                f"{message.protocol!r}, which this codec was not built for "
                f"(knows: {self.protocols()})")
        ptype, content = self._encode_payload_content(message.payload)
        payload_size = int(message.payload_size)
        out: list = [_MESSAGE_HEADER.pack(
            WIRE_VERSION, ptype, message.priority, proto_id,
            wire_id(message.type.name), payload_size)]
        self._encode_fields(message.type, message.fields, out)
        out.append(content)
        if len(content) < payload_size:
            out.append(b"\x00" * (payload_size - len(content)))
        encoded = b"".join(out)
        if len(encoded) > MAX_WIRE_SIZE:
            raise WireError(
                f"message {message.name!r} encodes to {len(encoded)} bytes, "
                f"over the {MAX_WIRE_SIZE}-byte codec ceiling (a runaway "
                f"payload? live mode fragments datagrams, but not this big)")
        return encoded

    def decode_message(self, data: bytes, offset: int = 0) -> tuple[Message, int]:
        """Decode one message; returns ``(message, end_offset)``."""
        try:
            version, ptype, priority, proto_id, type_id, payload_size = \
                _MESSAGE_HEADER.unpack_from(data, offset)
        except struct.error as exc:
            raise WireError(f"truncated message header: {exc}") from exc
        if version != WIRE_VERSION:
            raise WireError(f"wire version {version} != {WIRE_VERSION}")
        protocol, message_type = self._message_type(proto_id, type_id)
        fields, offset = self._decode_fields(message_type, data,
                                             offset + _MESSAGE_HEADER.size)
        payload, consumed = self._decode_payload_content(ptype, data, offset)
        offset += max(consumed, payload_size)   # skip synthetic padding
        message = Message(type=message_type, fields=fields, payload=payload,
                          payload_size=payload_size, priority=priority,
                          protocol=protocol)
        return message, offset

    def _encode_wrapped(self, wrapped: WrappedMessage) -> bytes:
        proto_id = self._names.get(wrapped.protocol)
        if proto_id is None:
            raise WireError(
                f"wrapped message {wrapped.name!r} belongs to protocol "
                f"{wrapped.protocol!r}, which this codec was not built for "
                f"(knows: {self.protocols()})")
        _, message_type = self._message_type(proto_id, wire_id(wrapped.name))
        payload_size = int(wrapped.payload_size)
        if payload_size > 0xFFFF:
            raise WireError(
                f"wrapped message {wrapped.name!r} declares a "
                f"{payload_size}-byte payload; live mode caps wrapped "
                f"payloads at 65535 bytes")
        ptype, content = self._encode_payload_content(wrapped.payload)
        out: list = [_WRAPPED_HEADER.pack(
            ptype, proto_id, wire_id(wrapped.name), payload_size,
            (wrapped.source or 0) & 0xFFFFFFFF)]
        self._encode_fields(message_type, wrapped.fields, out)
        out.append(content)
        if len(content) < payload_size:
            out.append(b"\x00" * (payload_size - len(content)))
        return b"".join(out)

    def _decode_wrapped(self, data: bytes,
                        offset: int) -> tuple[WrappedMessage, int]:
        try:
            ptype, proto_id, type_id, payload_size, source = \
                _WRAPPED_HEADER.unpack_from(data, offset)
        except struct.error as exc:
            raise WireError(f"truncated wrapped-message header: {exc}") from exc
        protocol, message_type = self._message_type(proto_id, type_id)
        fields, offset = self._decode_fields(message_type, data,
                                             offset + _WRAPPED_HEADER.size)
        payload, consumed = self._decode_payload_content(ptype, data, offset)
        offset += max(consumed, payload_size)
        source = source or None
        from .keys import hash_key
        wrapped = WrappedMessage(
            protocol=protocol, name=message_type.name, fields=fields,
            payload=payload, payload_size=payload_size, source=source,
            source_key=hash_key(source) if source is not None else None,
            size=message_type.size_of(fields, payload_size))
        return wrapped, offset

    # -------------------------------------------------------------- payloads
    def _encode_payload_content(self, payload: Any) -> tuple[int, bytes]:
        if payload is None:
            return _P_NONE, b""
        if isinstance(payload, Message):
            return _P_MESSAGE, self.encode_message(payload)
        if isinstance(payload, WrappedMessage):
            return _P_WRAPPED, self._encode_wrapped(payload)
        if isinstance(payload, (bytes, bytearray, memoryview)):
            data = bytes(payload)
            return _P_BYTES, _U32.pack(len(data)) + data
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            return _P_STR, _U32.pack(len(data)) + data
        if isinstance(payload, bool):
            return _P_BOOL, struct.pack("!?", payload)
        if isinstance(payload, int):
            return _P_INT, struct.pack("!q", payload)
        if isinstance(payload, float):
            return _P_FLOAT, struct.pack("!d", payload)
        app_payload, heartbeat = self._payload_classes()
        if isinstance(payload, app_payload):
            return _P_APP, _APP_PAYLOAD.pack(
                payload.seqno, payload.sent_at, payload.source & 0xFFFFFFFFFFFFFFFF,
                payload.size, payload.stream_id)
        if isinstance(payload, heartbeat):
            return _P_HEARTBEAT, struct.pack(
                "!?", payload.kind == "pong")
        if isinstance(payload, self._kv_payload):
            return _P_KV, _KV_PAYLOAD.pack(
                payload.op & 0xFF, payload.key & 0xFFFFFFFF, payload.version,
                payload.seqno, payload.sent_at,
                payload.source & 0xFFFFFFFFFFFFFFFF,
                payload.replier & 0xFFFFFFFFFFFFFFFF,
                payload.size, payload.stream_id)
        if isinstance(payload, self._topic_payload):
            return _P_TOPIC, _TOPIC_PAYLOAD.pack(
                payload.topic & 0xFFFFFFFF, payload.seqno, payload.sent_at,
                payload.source & 0xFFFFFFFFFFFFFFFF,
                payload.size, payload.stream_id)
        raise WireError(
            f"cannot encode payload of type {type(payload).__name__}; the "
            f"live wire supports None, bytes, str, int, float, bool, "
            f"AppPayload, KvPayload, TopicPayload, Message, and "
            f"WrappedMessage payloads")

    def _decode_payload_content(self, ptype: int, data: bytes,
                                offset: int) -> tuple[Any, int]:
        """Decode one payload; returns ``(payload, bytes_consumed)``."""
        start = offset
        if ptype == _P_NONE:
            return None, 0
        if ptype == _P_MESSAGE:
            message, end = self.decode_message(data, offset)
            return message, end - start
        if ptype == _P_WRAPPED:
            wrapped, end = self._decode_wrapped(data, offset)
            return wrapped, end - start
        try:
            if ptype == _P_BYTES:
                (length,) = _U32.unpack_from(data, offset)
                return bytes(_checked_slice(data, offset + 4, length)), 4 + length
            if ptype == _P_STR:
                (length,) = _U32.unpack_from(data, offset)
                return (_checked_slice(data, offset + 4,
                                       length).decode("utf-8"),
                        4 + length)
            if ptype == _P_BOOL:
                return struct.unpack_from("!?", data, offset)[0], 1
            if ptype == _P_INT:
                return struct.unpack_from("!q", data, offset)[0], 8
            if ptype == _P_FLOAT:
                return struct.unpack_from("!d", data, offset)[0], 8
            if ptype == _P_APP:
                seqno, sent_at, source, size, stream_id = \
                    _APP_PAYLOAD.unpack_from(data, offset)
                app_payload, _ = self._payload_classes()
                return (app_payload(seqno=seqno, sent_at=sent_at, source=source,
                                    size=size, stream_id=stream_id),
                        _APP_PAYLOAD.size)
            if ptype == _P_HEARTBEAT:
                (is_pong,) = struct.unpack_from("!?", data, offset)
                _, heartbeat = self._payload_classes()
                return heartbeat(kind="pong" if is_pong else "ping"), 1
            if ptype == _P_KV:
                (op, key, version, seqno, sent_at, source, replier, size,
                 stream_id) = _KV_PAYLOAD.unpack_from(data, offset)
                self._payload_classes()
                return (self._kv_payload(
                    op=op, key=key, version=version, seqno=seqno,
                    sent_at=sent_at, source=source, replier=replier,
                    size=size, stream_id=stream_id), _KV_PAYLOAD.size)
            if ptype == _P_TOPIC:
                topic, seqno, sent_at, source, size, stream_id = \
                    _TOPIC_PAYLOAD.unpack_from(data, offset)
                self._payload_classes()
                return (self._topic_payload(
                    topic=topic, seqno=seqno, sent_at=sent_at, source=source,
                    size=size, stream_id=stream_id), _TOPIC_PAYLOAD.size)
        except struct.error as exc:
            raise WireError(f"truncated payload (type {ptype}): {exc}") from exc
        raise WireError(f"unknown payload type tag {ptype} on the wire")

    def encode_payload(self, payload: Any) -> bytes:
        """Standalone payload block: a type tag byte plus the content."""
        ptype, content = self._encode_payload_content(payload)
        return bytes([ptype]) + content

    def decode_payload(self, data: bytes, offset: int = 0) -> tuple[Any, int]:
        """Inverse of :meth:`encode_payload`; returns ``(payload, end_offset)``."""
        if offset >= len(data):
            raise WireError("truncated payload block: missing type tag")
        payload, consumed = self._decode_payload_content(data[offset], data,
                                                         offset + 1)
        return payload, offset + 1 + consumed
