"""Typed protocol messages.

A ``mac`` specification declares its messages, each bound to a transport
instance (lowest layer) or service class (higher layers)::

    messages {
        BEST_EFFORT join { }
        HIGHEST join_reply { int response; }
    }

The runtime turns each declaration into a :class:`MessageType` with typed
fields.  Field types drive the on-the-wire size model so the emulator charges
realistic bytes for control traffic, and the generated code accesses fields
either as attributes (``msg.response``) or through the paper's ``field()``
primitive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

#: Serialized size, in bytes, of each supported field type.
FIELD_TYPE_SIZES: dict[str, int] = {
    "int": 4,
    "long": 8,
    "double": 8,
    "float": 4,
    "bool": 1,
    "key": 4,
    "ipaddr": 4,
    "string": 16,
    "neighbor": 8,
}

#: Fixed per-message envelope overhead (type tag, source, protocol id).
MESSAGE_HEADER_BYTES = 16


class MessageError(ValueError):
    """Raised for unknown message types or malformed field access."""


@dataclass(frozen=True)
class FieldSpec:
    """One declared field of a message type."""

    name: str
    type_name: str
    #: For list-typed fields ("neighbor list", "int list"), the element type.
    is_list: bool = False

    def size_of(self, value: Any) -> int:
        base = FIELD_TYPE_SIZES.get(self.type_name, 8)
        if self.is_list:
            try:
                length = len(value)
            except TypeError:
                length = 0
            return 4 + base * length
        if self.type_name == "string" and isinstance(value, str):
            return max(1, len(value.encode("utf-8")))
        return base


@dataclass(frozen=True)
class MessageType:
    """A declared message type: name, fields, and default transport binding."""

    name: str
    fields: tuple[FieldSpec, ...] = ()
    transport: Optional[str] = None

    def field_names(self) -> list[str]:
        return [spec.name for spec in self.fields]

    def validate_fields(self, values: Mapping[str, Any]) -> None:
        declared = set(self.field_names())
        unknown = set(values) - declared
        if unknown:
            raise MessageError(
                f"message {self.name!r} has no field(s) {sorted(unknown)} "
                f"(declared: {sorted(declared)})"
            )

    def size_of(self, values: Mapping[str, Any], payload_size: int = 0) -> int:
        total = MESSAGE_HEADER_BYTES + payload_size
        for spec in self.fields:
            total += spec.size_of(values.get(spec.name))
        return total


_message_ids = itertools.count(1)


@dataclass
class Message:
    """An instance of a message type travelling between two overlay nodes.

    ``fields`` holds the declared field values; ``payload`` carries opaque
    application data (or a wrapped higher-layer message) of ``payload_size``
    bytes.  ``source`` is filled by the runtime on reception with the sender's
    host address, matching the paper's implicit ``from`` variable.
    """

    type: MessageType
    fields: dict[str, Any] = field(default_factory=dict)
    payload: Any = None
    payload_size: int = 0
    priority: int = -1
    source: Optional[int] = None
    dest: Optional[int] = None
    dest_key: Optional[int] = None
    protocol: str = ""
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        self.type.validate_fields(self.fields)

    @property
    def name(self) -> str:
        return self.type.name

    @property
    def size(self) -> int:
        return self.type.size_of(self.fields, self.payload_size)

    def field(self, name: str) -> Any:
        """The paper's ``field()`` accessor."""
        if name not in {spec.name for spec in self.type.fields}:
            raise MessageError(f"message {self.name!r} has no field {name!r}")
        return self.fields.get(name)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails: treat it as a field
        # access so generated code can write ``msg.response``.
        fields = object.__getattribute__(self, "fields")
        if name in fields:
            return fields[name]
        msg_type = object.__getattribute__(self, "type")
        if name in {spec.name for spec in msg_type.fields}:
            return None
        raise AttributeError(name)


@dataclass
class WrappedMessage:
    """A higher-layer message carried as the payload of a lower-layer message.

    This is how protocol layering crosses the wire: Scribe's ``join`` control
    message, for example, travels as the payload of a Pastry route message and
    is unwrapped by the Scribe agent on the receiving stack.
    """

    protocol: str
    name: str
    fields: dict[str, Any]
    payload: Any = None
    payload_size: int = 0
    source: Optional[int] = None
    source_key: Optional[int] = None
    size: int = 0

    def as_message(self, message_type: MessageType) -> Message:
        message = Message(
            type=message_type,
            fields=dict(self.fields),
            payload=self.payload,
            payload_size=self.payload_size,
            source=self.source,
            protocol=self.protocol,
        )
        return message


class MessageCatalog:
    """The set of message types declared by one protocol."""

    def __init__(self, types: Optional[list[MessageType]] = None) -> None:
        self._types: dict[str, MessageType] = {}
        for message_type in types or []:
            self.add(message_type)

    def add(self, message_type: MessageType) -> None:
        if message_type.name in self._types:
            raise MessageError(f"message {message_type.name!r} declared twice")
        self._types[message_type.name] = message_type

    def get(self, name: str) -> MessageType:
        try:
            return self._types[name]
        except KeyError as exc:
            raise MessageError(
                f"unknown message type {name!r} (declared: {sorted(self._types)})"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> list[str]:
        return sorted(self._types)
