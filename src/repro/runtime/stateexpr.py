"""FSM state expressions.

Transitions in a mac file are scoped by a state expression, e.g.::

    any API route [locking read;] { ... }
    probing timer keep_probing { ... }
    !(joining|init) recv join { ... }

An expression is ``any``, a single state name, an alternation ``a|b|c``
(optionally parenthesised), or a negation ``!(...)`` / ``!name`` of the above.
This module parses such expressions once and evaluates them against the
current FSM state on every dispatch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence


class StateExprError(ValueError):
    """Raised for malformed state expressions or unknown state names."""


_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|[()|!])")


@dataclass(frozen=True)
class StateExpr:
    """A parsed state expression: a set of states, possibly negated."""

    source: str
    states: FrozenSet[str]
    negated: bool = False
    match_any: bool = False

    def matches(self, state: str) -> bool:
        """Whether the expression is satisfied by the given FSM state."""
        if self.match_any:
            return True
        result = state in self.states
        return not result if self.negated else result

    def __str__(self) -> str:
        return self.source


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise StateExprError(f"unexpected character in state expression: {remainder[0]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


def parse_state_expr(text: str,
                     known_states: Optional[Sequence[str]] = None) -> StateExpr:
    """Parse a state expression, optionally validating names against *known_states*.

    ``init`` is always an allowed state name (it is implicit in every
    protocol), as is ``any``.
    """
    source = text.strip()
    if not source:
        raise StateExprError("empty state expression")
    tokens = _tokenize(source)
    if not tokens:
        raise StateExprError(f"empty state expression: {text!r}")

    negated = False
    index = 0
    if tokens[index] == "!":
        negated = True
        index += 1

    # Optional single level of parentheses around the alternation.
    parenthesised = False
    if index < len(tokens) and tokens[index] == "(":
        parenthesised = True
        index += 1

    names: list[str] = []
    expect_name = True
    while index < len(tokens):
        token = tokens[index]
        if token == ")":
            if not parenthesised:
                raise StateExprError(f"unbalanced ')' in {text!r}")
            parenthesised = False
            index += 1
            break
        if expect_name:
            if token in ("|", "(", "!", ")"):
                raise StateExprError(f"expected a state name in {text!r}")
            names.append(token)
            expect_name = False
        else:
            if token != "|":
                raise StateExprError(f"expected '|' between state names in {text!r}")
            expect_name = True
        index += 1

    if parenthesised:
        raise StateExprError(f"missing ')' in {text!r}")
    if index != len(tokens):
        raise StateExprError(f"trailing tokens in state expression {text!r}")
    if expect_name:
        raise StateExprError(f"dangling '|' in state expression {text!r}")
    if not names:
        raise StateExprError(f"no state names in {text!r}")

    if len(names) == 1 and names[0] == "any":
        if negated:
            raise StateExprError("'!any' is not a useful state expression")
        return StateExpr(source=source, states=frozenset(), negated=False, match_any=True)

    if known_states is not None:
        allowed = set(known_states) | {"init"}
        unknown = [name for name in names if name not in allowed]
        if unknown:
            raise StateExprError(
                f"unknown state(s) {unknown} in expression {text!r} "
                f"(declared: {sorted(allowed)})"
            )

    return StateExpr(source=source, states=frozenset(names), negated=negated)
