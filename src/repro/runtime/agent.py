"""The MACEDON agent: the runtime object generated protocol code runs inside.

A *mac* specification compiles (via :mod:`repro.codegen`) into a subclass of
:class:`Agent`.  The subclass carries the protocol's declarations as class
attributes (states, neighbor types, messages, transports, state variables,
timers, transitions) and one method per transition.  Everything else — event
dispatch, FSM state scoping, read/write locking, neighbor management, the
timer subsystem, message transmission, layering upcalls/downcalls, tracing,
failure-detection hooks — lives here and is shared by every protocol, which is
exactly the paper's argument for fairness: protocols differ only in their
specifications, never in their runtime machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Optional, Sequence

from .keys import KeySpace
from .locks import InstanceLock
from .messages import Message, MessageCatalog, MessageType, WrappedMessage
from .neighbors import NeighborSet, NeighborType
from .stateexpr import StateExpr, parse_state_expr
from .timers import TimerSpec, TimerTable
from .tracing import TraceLevel

#: Neighbor-type constants used by the notify() upcall, as in the paper's sample.
NBR_TYPE_PARENT = 1
NBR_TYPE_CHILDREN = 2
NBR_TYPE_SIBLINGS = 3
NBR_TYPE_PEERS = 4

#: API transition names accepted by the grammar.
API_NAMES = (
    "init", "route", "routeIP", "multicast", "anycast", "collect",
    "create_group", "join", "leave", "notify", "error",
    "upcall_ext", "downcall_ext",
)


class AgentError(RuntimeError):
    """Raised for protocol-level misuse detected by the runtime."""


# --------------------------------------------------------------------------- specs
@dataclass(frozen=True)
class TransitionSpec:
    """One transition declaration: (state expression, event) -> method."""

    kind: str                 # "api" | "timer" | "recv" | "forward"
    name: str                 # API name, timer name, or message name
    state_expr: str           # textual state expression, e.g. "!(joining|init)"
    method: str               # name of the generated method on the agent class
    locking: str = "write"    # "read" or "write"

    def __post_init__(self) -> None:
        if self.kind not in ("api", "timer", "recv", "forward"):
            raise ValueError(f"unknown transition kind {self.kind!r}")
        if self.locking not in ("read", "write"):
            raise ValueError(f"unknown locking mode {self.locking!r}")
        if self.kind == "api" and self.name not in API_NAMES:
            raise ValueError(f"unknown API transition name {self.name!r}")


@dataclass(frozen=True)
class StateVarSpec:
    """One state-variable declaration.

    ``kind`` is one of:

    * ``"var"`` — a plain scalar of ``type_name`` (int, double, bool, key,
      ipaddr, string) with an optional default;
    * ``"neighbor_set"`` — an instance of the declared neighbor type
      ``type_name``, optionally ``fail_detect``;
    * ``"timer"`` — a timer with optional default ``period``;
    * ``"map"`` / ``"list"`` / ``"set"`` — container state for protocol
      bookkeeping (Scribe group tables, Bullet summaries, …).
    """

    name: str
    kind: str
    type_name: str = ""
    default: Any = None
    fail_detect: bool = False
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("var", "neighbor_set", "timer", "map", "list", "set"):
            raise ValueError(f"unknown state variable kind {self.kind!r}")


_SCALAR_DEFAULTS = {
    "int": 0, "long": 0, "double": 0.0, "float": 0.0, "bool": False,
    "key": 0, "ipaddr": 0, "string": "",
}


# ----------------------------------------------------------------------- context
class TransitionContext:
    """Everything a transition may read about the event that triggered it.

    The code generator rewrites context names appearing in transition bodies
    (``source``, ``msg``, ``dest_key``, ``payload`` …) into attribute accesses
    on this object.

    One context is built per dispatched event, so it is a ``__slots__`` class
    with an explicit constructor — the attribute set is closed (it mirrors
    :data:`repro.codegen.primitives.CONTEXT_NAMES` plus ``api``).
    """

    __slots__ = ("api", "source", "source_key", "msg", "dest", "dest_key",
                 "group", "payload", "payload_size", "priority", "bootstrap",
                 "next_hop", "next_hop_key", "quash", "error_addr",
                 "neighbors", "nbr_type", "op", "arg", "timer_name", "result")

    def __init__(self, api: Optional[str] = None, source: Optional[int] = None,
                 source_key: Optional[int] = None, msg: Optional[Message] = None,
                 dest: Optional[int] = None, dest_key: Optional[int] = None,
                 group: Optional[int] = None, payload: Any = None,
                 payload_size: int = 0, priority: int = -1,
                 bootstrap: Optional[int] = None, next_hop: Optional[int] = None,
                 next_hop_key: Optional[int] = None, quash: bool = False,
                 error_addr: Optional[int] = None,
                 neighbors: Optional[list[int]] = None,
                 nbr_type: Optional[int] = None, op: Optional[Any] = None,
                 arg: Any = None, timer_name: Optional[str] = None,
                 result: Any = None) -> None:
        self.api = api
        self.source = source
        self.source_key = source_key
        self.msg = msg
        self.dest = dest
        self.dest_key = dest_key
        self.group = group
        self.payload = payload
        self.payload_size = payload_size
        self.priority = priority
        self.bootstrap = bootstrap
        self.next_hop = next_hop
        self.next_hop_key = next_hop_key
        self.quash = quash
        self.error_addr = error_addr
        self.neighbors = neighbors
        self.nbr_type = nbr_type
        self.op = op
        self.arg = arg
        self.timer_name = timer_name
        self.result = result

    def field(self, name: str) -> Any:
        """The paper's ``field()`` accessor on the triggering message."""
        if self.msg is None:
            raise AgentError("field() used in a transition with no message")
        return self.msg.field(name)


# ------------------------------------------------------------------------- agent
class Agent:
    """Base class of all generated protocol agents (and hand-written ones)."""

    # ---- class attributes overridden by generated subclasses -----------------
    PROTOCOL: str = "agent"
    BASE_PROTOCOL: Optional[str] = None
    ADDRESSING: str = "ip"                    # "ip" or "hash"
    TRACE: TraceLevel = TraceLevel.OFF
    CONSTANTS: dict[str, Any] = {}
    STATES: tuple[str, ...] = ()
    NEIGHBOR_TYPES: dict[str, NeighborType] = {}
    TRANSPORT_DECLS: tuple[tuple[str, str], ...] = ()   # (kind, name) pairs
    MESSAGE_TYPES: tuple[MessageType, ...] = ()
    STATE_VARS: tuple[StateVarSpec, ...] = ()
    TRANSITIONS: tuple[TransitionSpec, ...] = ()
    KEY_SPACE: KeySpace = KeySpace()
    #: Shadowed by an instance attribute at the end of __init__; the class
    #: default keeps __setattr__'s guard check a plain attribute read (no
    #: getattr-with-default) during construction.
    _constructed: bool = False

    def __init__(self, node: "MacedonNode") -> None:  # noqa: F821 (forward ref)
        # The class-level _constructed=False default bypasses the
        # state-variable write guard during construction.
        self.node = node
        self.simulator = node.simulator
        self.my_addr: int = node.address
        self.key_space = self.KEY_SPACE
        self.my_key: int = self.key_space.hash(self.my_addr)
        self.lock = InstanceLock(strict=node.strict_locking)
        self.lower: Optional[Agent] = None
        self.upper: Optional[Agent] = None
        self.bootstrap_addr: Optional[int] = None
        self.bootstrap_key: Optional[int] = None
        self._state = "init"
        self._rng = node.simulator.fork_rng(f"{self.PROTOCOL}:{node.address}")
        self._catalog = MessageCatalog(list(self.MESSAGE_TYPES))
        self._timers = TimerTable(node.simulator, self._on_timer_expired)
        self._state_var_names: set[str] = set()
        self._fail_detect_sets: list[NeighborSet] = []
        self._compiled_transitions: list[tuple[TransitionSpec, StateExpr]] = []
        #: (kind, name) -> [(spec, compiled state expr, bound method), ...]
        #: in declaration order — the dispatch table the hot path consults
        #: instead of scanning every transition with string compares.
        self._transition_table: dict[tuple[str, str],
                                     list[tuple[TransitionSpec, StateExpr,
                                                Callable[..., Any]]]] = {}
        self._group_members: dict[int, set[int]] = {}
        self.initialized = False
        #: Trace gates, precomputed so hot paths skip the tracer call (and
        #: its argument formatting) entirely when the record would be
        #: filtered anyway.  The thresholds mirror
        #: :attr:`repro.runtime.tracing.Tracer.CATEGORY_LEVELS` — unless
        #: this run's tracer carries per-run category overrides
        #: (``repro.obs``), in which case the gate opens if *any* category
        #: behind it is enabled at this agent's level; ``Tracer.record``
        #: still filters exactly per category.
        tracer = getattr(node, "tracer", None)
        if tracer is not None and tracer.has_overrides:
            floor = tracer.level_floor
            if floor is not None and floor > self.TRACE:
                # Per-run verbosity raise: an *instance* attribute, so the
                # (cached) generated class keeps its spec-declared level.
                self.TRACE = floor
            trace, threshold = self.TRACE, tracer.threshold
            self._trace_med = any(
                trace >= threshold(category)
                for category in ("transition", "message_send", "message_recv"))
            self._trace_high = any(
                trace >= threshold(category)
                for category in ("timer", "neighbor", "debug"))
        else:
            self._trace_med = self.TRACE >= TraceLevel.MED
            self._trace_high = self.TRACE >= TraceLevel.HIGH
        self._transport_names: tuple[str, ...] = tuple(
            name for _, name in self.TRANSPORT_DECLS)

        for name, value in self.CONSTANTS.items():
            setattr(self, name, value)
        self._init_state_vars()
        self._compile_transitions()
        object.__setattr__(self, "_constructed", True)

    # ------------------------------------------------------------------- setup
    def _init_state_vars(self) -> None:
        for spec in self.STATE_VARS:
            if spec.kind == "neighbor_set":
                neighbor_type = self.NEIGHBOR_TYPES.get(spec.type_name)
                if neighbor_type is None:
                    raise AgentError(
                        f"{self.PROTOCOL}: state variable {spec.name!r} uses "
                        f"undeclared neighbor type {spec.type_name!r}"
                    )
                value: Any = NeighborSet(spec.name, neighbor_type,
                                         fail_detect=spec.fail_detect,
                                         rng=self._rng)
                if spec.fail_detect:
                    self._fail_detect_sets.append(value)
                    value.add_observer(self._on_fail_detect_change)
            elif spec.kind == "timer":
                value = self._timers.declare(TimerSpec(spec.name, spec.period))
            elif spec.kind == "map":
                value = dict(spec.default) if spec.default else {}
            elif spec.kind == "list":
                value = list(spec.default) if spec.default else []
            elif spec.kind == "set":
                value = set(spec.default) if spec.default else set()
            else:
                default = spec.default
                if default is None:
                    default = _SCALAR_DEFAULTS.get(spec.type_name, None)
                value = default
            object.__setattr__(self, spec.name, value)
            if spec.kind in ("var",):
                self._state_var_names.add(spec.name)

    def _compile_transitions(self) -> None:
        table = self._transition_table
        for spec in self.TRANSITIONS:
            expr = parse_state_expr(spec.state_expr, self.STATES)
            method = getattr(self, spec.method, None)
            if method is None:
                raise AgentError(
                    f"{self.PROTOCOL}: transition references missing method {spec.method!r}"
                )
            self._compiled_transitions.append((spec, expr))
            # Bind the method once here; within one (kind, name) bucket the
            # declaration order is preserved, so the table dispatches exactly
            # the transition the old linear scan would have found.
            table.setdefault((spec.kind, spec.name), []).append(
                (spec, expr, method))
        index = getattr(type(self), "TRANSITION_INDEX", None)
        if index is not None and len(index) != len(table):
            raise AgentError(
                f"{self.PROTOCOL}: generated TRANSITION_INDEX disagrees with "
                f"TRANSITIONS (stale generated module?)"
            )

    # ----------------------------------------------------- write-lock guarding
    def __setattr__(self, name: str, value: Any) -> None:
        if self._constructed and name in self._state_var_names:
            self.lock.assert_writable(f"assignment to state variable {name!r}")
        object.__setattr__(self, name, value)

    # ---------------------------------------------------------------- identity
    @property
    def protocol_name(self) -> str:
        return self.PROTOCOL

    @property
    def state(self) -> str:
        """Current FSM state."""
        return self._state

    @property
    def is_bootstrap(self) -> bool:
        return self.bootstrap_addr is not None and self.bootstrap_addr == self.my_addr

    def now(self) -> float:
        return self.simulator.now

    def random(self) -> float:
        return self._rng.random()

    def random_int(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 0:
            return 0
        return self._rng.randrange(upper)

    def hash_of(self, value: Any) -> int:
        """Hash an identifier into the protocol's key space."""
        return self.key_space.hash(value)

    # ------------------------------------------------------------------ events
    def api_call(self, name: str, ctx: Optional[TransitionContext] = None) -> Any:
        """Invoke an API transition on this agent (from the app or an upper layer)."""
        ctx = ctx or TransitionContext()
        ctx.api = name
        if name == "init":
            self.bootstrap_addr = ctx.bootstrap
            if ctx.bootstrap is not None:
                self.bootstrap_key = self.key_space.hash(ctx.bootstrap)
            self.initialized = True
        handled = self._dispatch("api", name, ctx)
        if not handled:
            return self._default_api(name, ctx)
        return ctx.result

    def _default_api(self, name: str, ctx: TransitionContext) -> Any:
        """Behaviour when a protocol declares no transition for an API call.

        Data-path and group calls fall through to the layer below (so an
        application talking to Scribe can still ``route`` through Pastry);
        everything else is a silent no-op, matching the generated C++ stubs.
        """
        passthrough = {"route", "routeIP", "multicast", "anycast", "collect",
                       "create_group", "join", "leave", "downcall_ext"}
        if name in passthrough and self.lower is not None:
            return self.lower.api_call(name, ctx)
        return None

    def _on_timer_expired(self, timer_name: str) -> None:
        ctx = TransitionContext(timer_name=timer_name)
        self._dispatch("timer", timer_name, ctx)

    def receive_message(self, message: Message, direction: str = "recv") -> bool:
        """Dispatch a received (or to-be-forwarded) protocol message."""
        ctx = TransitionContext(msg=message, source=message.source,
                                payload=message.payload,
                                payload_size=message.payload_size)
        if message.source is not None:
            ctx.source_key = self.key_space.hash(message.source)
        return self._dispatch(direction, message.name, ctx)

    def _dispatch(self, kind: str, name: str, ctx: TransitionContext) -> bool:
        """Find and execute the transition for (kind, name, current state).

        One dict lookup into the dispatch table built at construction, then a
        state-expression check over the (almost always singleton) bucket —
        no per-delivery ``getattr`` and no string matching over the whole
        transition list.
        """
        candidates = self._transition_table.get((kind, name))
        if not candidates:
            return False
        state = self._state
        for spec, expr, method in candidates:
            if not expr.matches(state):
                continue
            if self._trace_med:   # "transition" records at TraceLevel.MED
                self.trace("transition", f"{kind}:{name}", state=state,
                           locking=spec.locking)
            with self.lock.acquire(spec.locking):
                method(ctx)
            return True
        return False

    def has_transition(self, kind: str, name: str) -> bool:
        return any(spec.kind == kind and spec.name == name
                   for spec, _ in self._compiled_transitions)

    # ------------------------------------------------------------- primitives
    # These are the library routines transition bodies call (after the code
    # generator prefixes them with ``self.``).

    def state_change(self, new_state: str) -> None:
        """Move the FSM to *new_state* (a control action: requires write lock)."""
        if new_state not in self.STATES and new_state != "init":
            raise AgentError(f"{self.PROTOCOL}: unknown state {new_state!r}")
        self.lock.assert_writable("state_change")
        old = self._state
        object.__setattr__(self, "_state", new_state)
        self.trace("state_change", f"{old}->{new_state}")

    # -- neighbor management ---------------------------------------------------
    def neighbor_add(self, neighbor_set: NeighborSet, address: int,
                     key: Optional[int] = None, **fields: Any):
        self.lock.assert_writable("neighbor_add")
        if key is None and self.ADDRESSING == "hash":
            key = self.key_space.hash(address)
        entry = neighbor_set.add(address, key=key, **fields)
        if self._trace_high:   # "neighbor" records at TraceLevel.HIGH
            self.trace("neighbor", f"add {address} to {neighbor_set.name}")
        return entry

    def neighbor_remove(self, neighbor_set: NeighborSet, address: int):
        self.lock.assert_writable("neighbor_remove")
        entry = neighbor_set.remove(address)
        if self._trace_high:
            self.trace("neighbor", f"remove {address} from {neighbor_set.name}")
        return entry

    def neighbor_clear(self, neighbor_set: NeighborSet) -> None:
        self.lock.assert_writable("neighbor_clear")
        neighbor_set.clear()

    @staticmethod
    def neighbor_size(neighbor_set: NeighborSet) -> int:
        return neighbor_set.size()

    @staticmethod
    def neighbor_query(neighbor_set: NeighborSet, address: int) -> bool:
        return neighbor_set.query(address)

    @staticmethod
    def neighbor_entry(neighbor_set: NeighborSet, address: int):
        return neighbor_set.entry(address)

    @staticmethod
    def neighbor_random(neighbor_set: NeighborSet):
        return neighbor_set.random()

    @staticmethod
    def neighbor_addresses(neighbor_set: NeighborSet) -> list[int]:
        return neighbor_set.addresses()

    def _on_fail_detect_change(self, neighbor_set: NeighborSet, action: str,
                               address: int) -> None:
        if action == "add":
            self.node.failure_detector.monitor(address)
        elif action == "remove":
            self.node.failure_detector.unmonitor(address)

    # -- timers ------------------------------------------------------------------
    def timer_sched(self, timer, delay: Optional[float] = None) -> None:
        timer = self._resolve_timer(timer)
        timer.schedule(delay)
        if self._trace_high:   # "timer" records at TraceLevel.HIGH
            self.trace("timer", f"sched {timer.name}")

    def timer_resched(self, timer, delay: Optional[float] = None) -> None:
        timer = self._resolve_timer(timer)
        timer.reschedule(delay)
        if self._trace_high:
            self.trace("timer", f"resched {timer.name}")

    def timer_cancel(self, timer) -> None:
        timer = self._resolve_timer(timer)
        timer.cancel()
        if self._trace_high:
            self.trace("timer", f"cancel {timer.name}")

    def _resolve_timer(self, timer):
        if isinstance(timer, str):
            return self._timers.get(timer)
        return timer

    # -- message transmission ----------------------------------------------------
    def send_msg(self, name: str, dest: int, *, priority: int = -1,
                 payload: Any = None, payload_size: int = 0,
                 tag: Optional[str] = None, **fields: Any) -> None:
        """Transmit one of this protocol's declared messages directly to *dest*.

        Only meaningful on the lowest layer of a stack (the layer that owns
        transports); layered protocols use :meth:`route_msg` /
        :meth:`routeip_msg` instead.
        """
        message_type = self._catalog.get(name)
        dest = int(dest)
        message = Message(type=message_type, fields=fields, payload=payload,
                          payload_size=payload_size, priority=priority,
                          source=self.my_addr, dest=dest, protocol=self.PROTOCOL)
        transport_name = self._select_transport(message_type, priority)
        payload_tag = tag
        if payload_tag is None and payload is not None:
            payload_tag = getattr(payload, "tag", None)
        if self._trace_med:   # "message_send" records at TraceLevel.MED
            self.trace("message_send", name, dest=dest, size=message.size)
        self.node.send_wire_message(transport_name, dest, message, payload_tag)

    def _select_transport(self, message_type: MessageType, priority: int) -> str:
        declared = self._transport_names
        if priority is not None and priority >= 0 and declared:
            return declared[min(priority, len(declared) - 1)]
        if message_type.transport:
            return message_type.transport
        if declared:
            return declared[0]
        return self.node.transport_host.DEFAULT_TRANSPORT

    def wrap_msg(self, name: str, *, payload: Any = None, payload_size: int = 0,
                 **fields: Any) -> WrappedMessage:
        """Wrap one of this protocol's messages for transport by a lower layer."""
        message_type = self._catalog.get(name)
        size = message_type.size_of(fields, payload_size)
        return WrappedMessage(protocol=self.PROTOCOL, name=name, fields=dict(fields),
                              payload=payload, payload_size=payload_size,
                              source=self.my_addr, source_key=self.my_key, size=size)

    def route_msg(self, name: str, dest_key: int, *, priority: int = -1,
                  payload: Any = None, payload_size: int = 0, **fields: Any) -> None:
        """Send one of this protocol's messages via the lower layer's ``route``."""
        wrapped = self.wrap_msg(name, payload=payload, payload_size=payload_size,
                                **fields)
        self.downcall_route(dest_key, wrapped, wrapped.size, priority)

    def routeip_msg(self, name: str, dest_ip: int, *, priority: int = -1,
                    payload: Any = None, payload_size: int = 0, **fields: Any) -> None:
        """Send one of this protocol's messages via the lower layer's ``routeIP``."""
        wrapped = self.wrap_msg(name, payload=payload, payload_size=payload_size,
                                **fields)
        self.downcall_routeip(dest_ip, wrapped, wrapped.size, priority)

    # -- downcalls (into the layer below) -----------------------------------------
    def _require_lower(self) -> "Agent":
        if self.lower is None:
            raise AgentError(
                f"{self.PROTOCOL}: downcall attempted but there is no lower layer"
            )
        return self.lower

    def downcall_route(self, dest_key: int, payload: Any, size: int,
                       priority: int = -1) -> Any:
        ctx = TransitionContext(dest_key=int(dest_key), payload=payload,
                                payload_size=size, priority=priority)
        return self._require_lower().api_call("route", ctx)

    def downcall_routeip(self, dest_ip: int, payload: Any, size: int,
                         priority: int = -1) -> Any:
        ctx = TransitionContext(dest=int(dest_ip), payload=payload,
                                payload_size=size, priority=priority)
        return self._require_lower().api_call("routeIP", ctx)

    def downcall_multicast(self, group: int, payload: Any, size: int,
                           priority: int = -1) -> Any:
        ctx = TransitionContext(group=int(group), payload=payload,
                                payload_size=size, priority=priority)
        return self._require_lower().api_call("multicast", ctx)

    def downcall_anycast(self, group: int, payload: Any, size: int,
                         priority: int = -1) -> Any:
        ctx = TransitionContext(group=int(group), payload=payload,
                                payload_size=size, priority=priority)
        return self._require_lower().api_call("anycast", ctx)

    def downcall_collect(self, group: int, payload: Any, size: int,
                         priority: int = -1) -> Any:
        ctx = TransitionContext(group=int(group), payload=payload,
                                payload_size=size, priority=priority)
        return self._require_lower().api_call("collect", ctx)

    def downcall_create_group(self, group: int) -> Any:
        return self._require_lower().api_call(
            "create_group", TransitionContext(group=int(group)))

    def downcall_join(self, group: int) -> Any:
        return self._require_lower().api_call("join", TransitionContext(group=int(group)))

    def downcall_leave(self, group: int) -> Any:
        return self._require_lower().api_call("leave", TransitionContext(group=int(group)))

    def downcall_ext(self, op: Any, arg: Any = None) -> Any:
        ctx = TransitionContext(op=op, arg=arg)
        return self._require_lower().api_call("downcall_ext", ctx)

    # -- upcalls (into the layer above / the application) --------------------------
    def upcall_deliver(self, payload: Any, size: int, mtype: Any = None,
                       source: Optional[int] = None,
                       source_key: Optional[int] = None) -> None:
        """Deliver *payload* to the layer above (or the application)."""
        if self.upper is not None:
            self.upper.handle_lower_deliver(payload, size, mtype,
                                            source=source, source_key=source_key)
        else:
            self.node.app_deliver(self, payload, size, mtype)

    def upcall_forward(self, payload: Any, size: int, mtype: Any,
                       next_hop: Optional[int], next_hop_key: Optional[int],
                       source: Optional[int] = None) -> tuple[bool, Optional[int]]:
        """Offer a routing decision to the layer above.

        Returns ``(allow, next_hop_override)``: ``allow`` is False if the upper
        layer quashed the message; ``next_hop_override`` is a replacement
        next-hop key if the upper layer changed the destination.
        """
        if self.upper is not None:
            return self.upper.handle_lower_forward(payload, size, mtype,
                                                   next_hop, next_hop_key,
                                                   source=source)
        return self.node.app_forward(self, payload, size, mtype,
                                     next_hop, next_hop_key)

    def upcall_notify(self, neighbors: Any, nbr_type: int = 0) -> None:
        """Tell the layer above that a neighbor set changed."""
        if isinstance(neighbors, NeighborSet):
            addresses = neighbors.addresses()
        elif neighbors is None:
            addresses = []
        else:
            addresses = [int(address) for address in neighbors]
        if self.upper is not None:
            ctx = TransitionContext(neighbors=addresses, nbr_type=nbr_type)
            handled = self.upper._dispatch("api", "notify", ctx)
            if not handled:
                self.upper.upcall_notify(addresses, nbr_type)
        else:
            self.node.app_notify(self, addresses, nbr_type)

    def upcall_ext(self, op: Any, arg: Any = None) -> Any:
        """Extensible upcall to the layer above (the generic handler)."""
        if self.upper is not None:
            ctx = TransitionContext(op=op, arg=arg)
            handled = self.upper._dispatch("api", "upcall_ext", ctx)
            if handled:
                return ctx.result
            return self.upper.upcall_ext(op, arg)
        return self.node.app_upcall(self, op, arg)

    # -- handling upcalls arriving from the layer below ----------------------------
    def handle_lower_deliver(self, payload: Any, size: int, mtype: Any,
                             source: Optional[int] = None,
                             source_key: Optional[int] = None) -> None:
        if isinstance(payload, WrappedMessage) and payload.protocol == self.PROTOCOL:
            message = payload.as_message(self._catalog.get(payload.name))
            message.source = payload.source if payload.source is not None else source
            self.receive_message(message, direction="recv")
            return
        # Not ours: keep passing it up the stack.
        self.upcall_deliver(payload, size, mtype, source=source, source_key=source_key)

    def handle_lower_forward(self, payload: Any, size: int, mtype: Any,
                             next_hop: Optional[int], next_hop_key: Optional[int],
                             source: Optional[int] = None) -> tuple[bool, Optional[int]]:
        if isinstance(payload, WrappedMessage) and payload.protocol == self.PROTOCOL:
            message = payload.as_message(self._catalog.get(payload.name))
            message.source = payload.source if payload.source is not None else source
            ctx = TransitionContext(msg=message, source=message.source,
                                    payload=message.payload,
                                    payload_size=message.payload_size,
                                    next_hop=next_hop, next_hop_key=next_hop_key)
            handled = self._dispatch("forward", message.name, ctx)
            if handled:
                return (not ctx.quash, ctx.next_hop_key
                        if ctx.next_hop_key != next_hop_key else None)
            return (True, None)
        return self.upcall_forward(payload, size, mtype, next_hop, next_hop_key,
                                   source=source)

    # -- lifecycle -------------------------------------------------------------------
    def shutdown(self) -> None:
        """Silence this agent for a fail-stop crash.

        Cancels every pending timer so a crashed node schedules nothing
        further; the node recreates agents from scratch on recovery, so no
        state is preserved here (that is the point of fail-stop).
        """
        self._timers.cancel_all()

    # -- error / failure ------------------------------------------------------------
    def peer_failed(self, address: int) -> None:
        """Invoked by the node's failure detector when a monitored peer dies."""
        for neighbor_set in self._fail_detect_sets:
            if neighbor_set.query(address):
                ctx = TransitionContext(error_addr=int(address))
                handled = self._dispatch("api", "error", ctx)
                if not handled:
                    # Default repair: silently drop the dead peer.
                    with self.lock.acquire("write"):
                        neighbor_set.remove(address)

    # -- tracing ---------------------------------------------------------------------
    def trace(self, category: str, detail: str, **data: Any) -> None:
        self.node.tracer.record(self.TRACE, self.simulator.now, self.my_addr,
                                self.PROTOCOL, category, detail, **data)

    def debug(self, detail: str, **data: Any) -> None:
        if self._trace_high:   # "debug" records at TraceLevel.HIGH
            self.trace("debug", detail, **data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.PROTOCOL} @{self.my_addr} state={self._state}>"
