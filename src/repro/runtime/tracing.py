"""Automatic tracing.

The ``trace_`` header of a mac file selects one of four levels (``off``,
``low``, ``med``, ``high``).  Generated agents emit trace records for state
changes, transitions, message transmissions, and timer activity at increasing
levels of detail; the evaluation framework and the debugging workflow both
read the same records (the paper's built-in debugging/evaluation support).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


class TraceLevel(enum.IntEnum):
    """Increasing verbosity, matching the grammar's four settings."""

    OFF = 0
    LOW = 1
    MED = 2
    HIGH = 3

    @classmethod
    def parse(cls, text: str) -> "TraceLevel":
        try:
            return cls[text.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown trace level {text!r}") from exc


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    node: int
    protocol: str
    category: str
    detail: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records for one simulation.

    A single tracer is shared by every node in an experiment so records are
    globally time-ordered.  ``max_records`` bounds memory for long runs; when
    the bound is hit the oldest records are discarded (counts are kept).
    """

    #: Minimum level at which each category is recorded.
    CATEGORY_LEVELS = {
        "state_change": TraceLevel.LOW,
        "error": TraceLevel.LOW,
        "transition": TraceLevel.MED,
        "message_send": TraceLevel.MED,
        "message_recv": TraceLevel.MED,
        "timer": TraceLevel.HIGH,
        "neighbor": TraceLevel.HIGH,
        "debug": TraceLevel.HIGH,
    }

    def __init__(self, max_records: int = 200_000) -> None:
        self._records: list[TraceRecord] = []
        self._max_records = max_records
        self.counts: dict[str, int] = {}
        self.dropped = 0

    def record(self, level: TraceLevel, time: float, node: int, protocol: str,
               category: str, detail: str, **data: Any) -> None:
        """Record an event if *level* enables its category."""
        threshold = self.CATEGORY_LEVELS.get(category, TraceLevel.HIGH)
        if level < threshold:
            return
        self.counts[category] = self.counts.get(category, 0) + 1
        if len(self._records) >= self._max_records:
            self._records.pop(0)
            self.dropped += 1
        self._records.append(
            TraceRecord(time=time, node=node, protocol=protocol,
                        category=category, detail=detail, data=dict(data))
        )

    def records(self, category: Optional[str] = None,
                protocol: Optional[str] = None,
                node: Optional[int] = None) -> list[TraceRecord]:
        """Filtered view over collected records."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if protocol is not None and record.protocol != protocol:
                continue
            if node is not None and record.node != node:
                continue
            out.append(record)
        return out

    def count(self, category: str) -> int:
        return self.counts.get(category, 0)

    def clear(self) -> None:
        self._records.clear()
        self.counts.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self._records)
