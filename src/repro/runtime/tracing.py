"""Automatic tracing.

The ``trace_`` header of a mac file selects one of four levels (``off``,
``low``, ``med``, ``high``).  Generated agents emit trace records for state
changes, transitions, message transmissions, and timer activity at increasing
levels of detail; the evaluation framework and the debugging workflow both
read the same records (the paper's built-in debugging/evaluation support).

Two extension points serve the observability layer (:mod:`repro.obs`):

* **per-run category overrides** — a tracer built with ``category_levels``
  overrides replaces the class-level :attr:`Tracer.CATEGORY_LEVELS` policy
  for this run only (the class constant is never mutated).  Agents consult
  :meth:`Tracer.threshold` when :attr:`Tracer.has_overrides` is set, so the
  default construction path stays byte-identical to the historical gates.
* **streaming export** — an optional ``sink`` (see
  :class:`repro.obs.trace.TraceSink`) receives every accepted record as it
  is produced, so a bounded in-memory ring can spill a complete
  ``repro.trace/1`` JSONL file to disk without holding the run in memory.

The in-memory ring itself is a :class:`collections.deque` with ``maxlen``:
eviction at the bound is O(1) per record (the historical ``list.pop(0)``
was O(n), which made a saturated tracer quadratic over a long run).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Union


class TraceLevel(enum.IntEnum):
    """Increasing verbosity, matching the grammar's four settings."""

    OFF = 0
    LOW = 1
    MED = 2
    HIGH = 3

    @classmethod
    def parse(cls, text: str) -> "TraceLevel":
        try:
            return cls[text.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown trace level {text!r}") from exc


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    node: int
    protocol: str
    category: str
    detail: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records for one simulation.

    A single tracer is shared by every node in an experiment so records are
    globally time-ordered.  ``max_records`` bounds memory for long runs; when
    the bound is hit the oldest records are discarded (counts are kept, and
    a ``sink`` — if attached — has already streamed them out).
    """

    #: Minimum level at which each category is recorded.  ``route_hop`` is
    #: emitted by the causal tracer (:mod:`repro.obs.causal`) and records
    #: whenever tracing is on at all.
    CATEGORY_LEVELS = {
        "state_change": TraceLevel.LOW,
        "error": TraceLevel.LOW,
        "route_hop": TraceLevel.LOW,
        "transition": TraceLevel.MED,
        "message_send": TraceLevel.MED,
        "message_recv": TraceLevel.MED,
        "timer": TraceLevel.HIGH,
        "neighbor": TraceLevel.HIGH,
        "debug": TraceLevel.HIGH,
    }

    def __init__(self, max_records: int = 200_000, *,
                 category_levels: Optional[Mapping[str, Union[str, TraceLevel]]]
                 = None,
                 level: Optional[Union[str, TraceLevel]] = None,
                 sink: Optional[Any] = None) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=max_records)
        self._max_records = max_records
        self.counts: dict[str, int] = {}
        self.dropped = 0
        #: Optional streaming sink with a ``write(record)`` method; every
        #: accepted record is forwarded before ring eviction can touch it.
        self.sink = sink
        #: Per-run verbosity floor: agents whose spec-declared ``TRACE`` is
        #: below this record at this level instead (instance-scoped raise,
        #: see :class:`repro.runtime.agent.Agent`).  ``None`` leaves every
        #: agent at its declared level.
        self.level_floor: Optional[TraceLevel] = (
            None if level is None
            else level if isinstance(level, TraceLevel)
            else TraceLevel.parse(str(level)))
        if category_levels:
            levels = dict(self.CATEGORY_LEVELS)
            for category, override in category_levels.items():
                if category not in levels:
                    raise ValueError(
                        f"unknown trace category {category!r} "
                        f"(categories: {sorted(levels)})")
                parsed = (override if isinstance(override, TraceLevel)
                          else TraceLevel.parse(str(override)))
                # An "off" override disables the category outright: its
                # threshold moves above every possible record level.
                levels[category] = (TraceLevel.HIGH + 1
                                    if parsed == TraceLevel.OFF else parsed)
            self.category_levels: Mapping[str, TraceLevel] = levels
        else:
            # The shared class dict, read-only by convention: the default
            # path must not pay a per-tracer policy copy.
            self.category_levels = self.CATEGORY_LEVELS
        self._has_overrides = bool(category_levels) \
            or self.level_floor is not None

    @property
    def has_overrides(self) -> bool:
        """Whether this tracer's category policy differs from the default.

        Agents precompute their trace gates from :attr:`CATEGORY_LEVELS`;
        when this is set they derive the gates from :meth:`threshold`
        instead (see :class:`repro.runtime.agent.Agent`)."""
        return self._has_overrides

    def threshold(self, category: str) -> TraceLevel:
        """Minimum level at which *category* is recorded by this tracer."""
        return self.category_levels.get(category, TraceLevel.HIGH)

    def record(self, level: TraceLevel, time: float, node: int, protocol: str,
               category: str, detail: str, **data: Any) -> None:
        """Record an event if *level* enables its category."""
        threshold = self.category_levels.get(category, TraceLevel.HIGH)
        if level < threshold:
            return
        self.counts[category] = self.counts.get(category, 0) + 1
        records = self._records
        if len(records) == self._max_records:
            # The deque's maxlen evicts the oldest entry on append; book it.
            self.dropped += 1
        record = TraceRecord(time=time, node=node, protocol=protocol,
                             category=category, detail=detail,
                             data=dict(data))
        records.append(record)
        sink = self.sink
        if sink is not None:
            sink.write(record)

    def records(self, category: Optional[str] = None,
                protocol: Optional[str] = None,
                node: Optional[int] = None) -> list[TraceRecord]:
        """Filtered view over collected records."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if protocol is not None and record.protocol != protocol:
                continue
            if node is not None and record.node != node:
                continue
            out.append(record)
        return out

    def count(self, category: str) -> int:
        return self.counts.get(category, 0)

    def clear(self) -> None:
        self._records.clear()
        self.counts.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self._records)
