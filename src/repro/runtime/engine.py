"""Discrete-event simulation kernel.

Everything in the reproduction that needs time — link transmission, timer
expirations, protocol maintenance, application sending — is driven by a single
:class:`Simulator` instance.  The kernel is intentionally small: a priority
queue of events ordered by (time, sequence number), a simulated clock, and a
deterministic random number generator so whole experiments are reproducible
from a seed.

The paper's runtime uses thread pools for the timer and transport subsystems;
here the same event sources are multiplexed onto one deterministic event loop,
which is what lets the evaluation scale to thousands of overlay nodes on a
single machine (the role ModelNet plays in the paper).

The kernel is the hottest code in the repository — every simulated packet
costs at least one heap entry — so the internals favour flat ``__slots__``
objects and a hand-written comparison over dataclass conveniences.  See
docs/PERFORMANCE.md for the measured numbers and the rules the fast paths
must preserve (deterministic (time, seq) ordering above all).

The scheduling surface (``now`` / ``schedule`` / ``schedule_fast`` /
``schedule_gen`` / ``cancel_gen`` / ``fork_rng``) doubles as the repository's
**driver contract** (:mod:`repro.runtime.driver`): the protocol runtime only
ever uses this surface, so the same agents run against either this simulated
clock or the wall-clock asyncio driver of :mod:`repro.live` — the paper's
simulation/live-deployment duality.  ``Simulator`` is registered as a virtual
subclass of :class:`repro.runtime.driver.Driver`; changing these method
signatures means changing the contract.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional, Union

#: A label may be a plain string or a zero-argument callable producing one;
#: callables defer formatting cost until somebody actually reads the label.
Label = Union[str, Callable[[], str]]

# _Event.state values.  An event leaves the PENDING state exactly once, which
# is what lets the live-event counter stay O(1): the transition decrements it,
# and no other code path may.
_PENDING = 0
_CANCELLED = 1
_FIRED = 2


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class _Event:
    """Payload of one heap entry.

    The heap itself holds ``(time, seq, event)`` tuples so ordering — by time,
    then insertion sequence — is resolved by C tuple comparison; ``seq`` is
    unique, so two entries never compare their ``_Event`` payloads.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "label", "state")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: tuple, kwargs: Optional[dict], label: Label) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        #: ``None`` (not ``{}``) in the common no-kwargs case, so the dispatch
        #: loop can skip the ``**`` unpacking entirely.
        self.kwargs = kwargs
        self.label = label
        self.state = _PENDING


def _resolve_label(label: Label) -> str:
    return label() if callable(label) else label


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Allows the caller to cancel a pending event and to query whether it has
    already fired or been cancelled.
    """

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _Event, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.state == _CANCELLED

    @property
    def label(self) -> str:
        return _resolve_label(self._event.label)

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet.  Idempotent."""
        event = self._event
        if event.state == _PENDING:
            event.state = _CANCELLED
            self._simulator._live -= 1


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  All random
        choices made by the network emulator, transports, and protocols should
        derive from :attr:`rng` (or from generators forked via
        :meth:`fork_rng`) so an experiment is fully reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, _Event]] = []
        #: Insertion counter giving the deterministic FIFO tie-break for
        #: same-time events; a plain int incremented inline (cheaper than an
        #: itertools.count next() per schedule on the hot paths).
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Number of PENDING (scheduled, not yet fired or cancelled) events.
        self._live = 0
        self.rng = random.Random(seed)
        self._seed = seed
        self.events_processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def fork_rng(self, name: str) -> random.Random:
        """Return a new RNG deterministically derived from the seed and *name*.

        Subsystems that need their own stream of randomness (e.g. one per
        node) should fork rather than share :attr:`rng`, so adding a new
        consumer does not perturb every other consumer's draws.
        """
        return random.Random(f"{self._seed}:{name}")

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Label = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *callback* to run ``delay`` seconds from now.

        Returns an :class:`EventHandle` that can be used to cancel the event.
        A negative delay is an error; a zero delay schedules the callback to
        run after all events already scheduled for the current instant.
        *label* may be a string or a zero-argument callable (evaluated lazily,
        only when the label is actually read).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        time = self._now + delay
        event = _Event(time, callback, args, kwargs or None, label)
        self._live += 1
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, seq, event))
        return EventHandle(event, self)

    def schedule_fast(self, delay: float, callback: Callable[..., Any],
                      *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no kwargs, no label.

        The hot path for packet delivery and other events that are never
        cancelled or inspected.  Semantically identical to ``schedule`` —
        same (time, seq) ordering — but skips both handle and ``_Event``
        construction: the heap entry is a flat ``(time, seq, callback, args)``
        tuple.  ``seq`` is unique, so mixed 3- and 4-element entries never
        compare past index 1.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        self._live += 1
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, seq, callback, args))

    def schedule_gen(self, delay: float, callback: Callable[[], Any],
                     cell: list) -> None:
        """Generation-cancellable fire-and-forget scheduling.

        The cancellation-capable sibling of :meth:`schedule_fast`, built for
        timers that re-arm constantly (protocol timers, retransmission
        timeouts): it allocates no ``_Event`` and no :class:`EventHandle` per
        (re)schedule.  *cell* is a one-element list owned by the caller whose
        single int is the timer's current *generation*; the heap entry is a
        flat ``(time, seq, callback, cell, cell[0])`` 5-tuple capturing the
        generation at schedule time.  Cancelling (:meth:`cancel_gen`) bumps
        the generation, and a popped entry whose captured token no longer
        matches ``cell[0]`` is discarded exactly like a cancelled
        :class:`EventHandle` event: not dispatched, not counted towards
        ``events_processed``, and it does not advance the clock.

        Ordering is the shared deterministic ``(time, seq)`` order — ``seq``
        is unique across all three entry widths, so comparison never reaches
        the payload.  The caller is responsible for the one-pending-entry
        invariant: at most one live entry per cell, tracked by an "armed"
        flag (see :class:`repro.runtime.timers.ProtocolTimer`).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        self._live += 1
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue,
                 (self._now + delay, seq, callback, cell, cell[0]))

    def cancel_gen(self, cell: list) -> None:
        """Cancel the single pending :meth:`schedule_gen` entry tied to *cell*.

        Bumps the generation so the stale heap entry is discarded when it
        surfaces.  Must be called exactly once per pending entry (the caller
        tracks an "armed" flag): calling it with no entry pending would
        corrupt the O(1) live-event counter.
        """
        cell[0] += 1
        self._live -= 1

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Label = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *callback* at absolute simulated time *when*."""
        return self.schedule(when - self._now, callback, *args, label=label, **kwargs)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event.  Idempotent."""
        handle.cancel()

    # ---------------------------------------------------------------- running
    def pending(self) -> int:
        """Number of live (scheduled, not cancelled) events.  O(1)."""
        return self._live

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def stats(self) -> dict:
        """Kernel counters for the observability snapshot (``repro.obs``).

        The driver-agnostic probe surface: :class:`LiveDriver` exposes the
        same ``events_processed`` reading, so both clocks report through
        one key set.
        """
        return {"events_processed": self.events_processed,
                "pending": self._live, "now": self._now}

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Simulated time at which to stop.  Events scheduled exactly at
            ``until`` are executed.  ``None`` runs until the queue drains.
        max_events:
            Safety valve: stop after this many events have been processed.

        Returns
        -------
        float
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        self._stopped = False
        processed = 0
        queue = self._queue
        pop = heappop   # local alias: one global lookup saved per event
        time_limit = float("inf") if until is None else until
        event_limit = float("inf") if max_events is None else max_events
        try:
            while queue and not self._stopped:
                entry = queue[0]
                time = entry[0]
                if time > time_limit:
                    break
                pop(queue)
                width = len(entry)
                if width == 4:
                    # Fire-and-forget entry from schedule_fast: uncancellable,
                    # dispatch straight from the tuple.
                    if time < self._now:
                        raise SimulationError("event queue produced an event in the past")
                    self._live -= 1
                    self._now = time
                    entry[2](*entry[3])
                elif width == 5:
                    # Generation-cancellable entry from schedule_gen: a stale
                    # token means cancel_gen ran (counter already adjusted).
                    if entry[4] != entry[3][0]:
                        continue
                    if time < self._now:
                        raise SimulationError("event queue produced an event in the past")
                    self._live -= 1
                    self._now = time
                    entry[2]()
                else:
                    event = entry[2]
                    if event.state:  # cancelled; counter already decremented
                        continue
                    if time < self._now:
                        raise SimulationError("event queue produced an event in the past")
                    event.state = _FIRED
                    self._live -= 1
                    self._now = time
                    kwargs = event.kwargs
                    if kwargs is None:
                        event.callback(*event.args)
                    else:
                        event.callback(*event.args, **kwargs)
                processed += 1
                if processed >= event_limit:
                    break
            if until is not None and not self._stopped and self._now < until:
                # Advance the clock even if the queue drained early so callers
                # can rely on `now >= until` after a bounded run.
                self._now = until
        finally:
            self.events_processed += processed
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by *max_events*)."""
        return self.run(until=None, max_events=max_events)

    def run_windows(self, barriers: Iterable[float],
                    on_barrier: Callable[[float, int], None]) -> float:
        """Window-bounded execution: run to each barrier time in turn.

        After every bounded :meth:`run` the *on_barrier*\\(barrier, index)
        hook fires with the clock parked exactly at the barrier; the hook may
        schedule new events (the sharded kernel injects cross-shard arrivals
        here) but must not call :meth:`run` re-entrantly.  The barrier list is
        supplied by the caller so cooperating simulators in different
        processes can share one float-identical schedule
        (:func:`repro.runtime.sharded.driver.barrier_schedule`).
        """
        for index, barrier in enumerate(barriers):
            self.run(until=barrier)
            on_barrier(barrier, index)
        return self._now

    # -------------------------------------------------------------- utilities
    def drain_labels(self) -> Iterable[str]:
        """Labels of pending (non-cancelled) events — useful in tests.

        Fire-and-forget events from :meth:`schedule_fast` carry no label and
        appear as empty strings.
        """
        labels = []
        for entry in self._queue:
            width = len(entry)
            if width == 4:
                labels.append("")
            elif width == 5:
                if entry[4] == entry[3][0]:  # live (not generation-cancelled)
                    labels.append("")
            elif entry[2].state == _PENDING:
                labels.append(_resolve_label(entry[2].label))
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )
