"""Discrete-event simulation kernel.

Everything in the reproduction that needs time — link transmission, timer
expirations, protocol maintenance, application sending — is driven by a single
:class:`Simulator` instance.  The kernel is intentionally small: a priority
queue of events ordered by (time, sequence number), a simulated clock, and a
deterministic random number generator so whole experiments are reproducible
from a seed.

The paper's runtime uses thread pools for the timer and transport subsystems;
here the same event sources are multiplexed onto one deterministic event loop,
which is what lets the evaluation scale to thousands of overlay nodes on a
single machine (the role ModelNet plays in the paper).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry.  Ordering is by time, then insertion sequence."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Allows the caller to cancel a pending event and to query whether it has
    already fired or been cancelled.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def label(self) -> str:
        return self._event.label

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  All random
        choices made by the network emulator, transports, and protocols should
        derive from :attr:`rng` (or from generators forked via
        :meth:`fork_rng`) so an experiment is fully reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.rng = random.Random(seed)
        self._seed = seed
        self.events_processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def fork_rng(self, name: str) -> random.Random:
        """Return a new RNG deterministically derived from the seed and *name*.

        Subsystems that need their own stream of randomness (e.g. one per
        node) should fork rather than share :attr:`rng`, so adding a new
        consumer does not perturb every other consumer's draws.
        """
        return random.Random(f"{self._seed}:{name}")

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *callback* to run ``delay`` seconds from now.

        Returns an :class:`EventHandle` that can be used to cancel the event.
        A negative delay is an error; a zero delay schedules the callback to
        run after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        event = _ScheduledEvent(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *callback* at absolute simulated time *when*."""
        return self.schedule(when - self._now, callback, *args, label=label, **kwargs)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event.  Idempotent."""
        handle.cancel()

    # ---------------------------------------------------------------- running
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Simulated time at which to stop.  Events scheduled exactly at
            ``until`` are executed.  ``None`` runs until the queue drains.
        max_events:
            Safety valve: stop after this many events have been processed.

        Returns
        -------
        float
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if event.time < self._now:
                    raise SimulationError("event queue produced an event in the past")
                self._now = event.time
                event.callback(*event.args, **event.kwargs)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                # Advance the clock even if the queue drained early so callers
                # can rely on `now >= until` after a bounded run.
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by *max_events*)."""
        return self.run(until=None, max_events=max_events)

    # -------------------------------------------------------------- utilities
    def drain_labels(self) -> Iterable[str]:
        """Labels of pending (non-cancelled) events — useful in tests."""
        return [event.label for event in self._queue if not event.cancelled]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )
