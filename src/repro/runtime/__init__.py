"""MACEDON runtime: event kernel, agents, layering, timers, transports glue."""

from .agent import (
    Agent,
    AgentError,
    API_NAMES,
    NBR_TYPE_CHILDREN,
    NBR_TYPE_PARENT,
    NBR_TYPE_PEERS,
    NBR_TYPE_SIBLINGS,
    StateVarSpec,
    TransitionContext,
    TransitionSpec,
)
from .engine import EventHandle, SimulationError, Simulator
from .failure import FailureDetector, FailureDetectorConfig
from .keys import KeySpace, hash_key
from .locks import InstanceLock, LockingViolation
from .messages import (
    FieldSpec,
    Message,
    MessageCatalog,
    MessageError,
    MessageType,
    WrappedMessage,
)
from .neighbors import NeighborEntry, NeighborError, NeighborFieldSpec, NeighborSet, NeighborType
from .node import MacedonNode
from .stack import ProtocolStack, StackError
from .stateexpr import StateExpr, StateExprError, parse_state_expr
from .timers import ProtocolTimer, TimerError, TimerSpec, TimerTable
from .tracing import TraceLevel, TraceRecord, Tracer

__all__ = [
    "Agent",
    "AgentError",
    "API_NAMES",
    "NBR_TYPE_CHILDREN",
    "NBR_TYPE_PARENT",
    "NBR_TYPE_PEERS",
    "NBR_TYPE_SIBLINGS",
    "StateVarSpec",
    "TransitionContext",
    "TransitionSpec",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "FailureDetector",
    "FailureDetectorConfig",
    "KeySpace",
    "hash_key",
    "InstanceLock",
    "LockingViolation",
    "FieldSpec",
    "Message",
    "MessageCatalog",
    "MessageError",
    "MessageType",
    "WrappedMessage",
    "NeighborEntry",
    "NeighborError",
    "NeighborFieldSpec",
    "NeighborSet",
    "NeighborType",
    "MacedonNode",
    "ProtocolStack",
    "StackError",
    "StateExpr",
    "StateExprError",
    "parse_state_expr",
    "ProtocolTimer",
    "TimerError",
    "TimerSpec",
    "TimerTable",
    "TraceLevel",
    "TraceRecord",
    "Tracer",
]
