"""Failure detection.

The paper's runtime assumes a peer has failed "if no message has been received
from it in *f* seconds"; if communication has been quiet for *g* < *f* seconds
it first solicits traffic with a heartbeat request/response exchange.  Upon
declaring a failure the runtime invokes the protocol's ``error`` API
transition so the overlay can repair itself.

Only neighbor sets declared ``fail_detect`` are monitored.  Heartbeats are
runtime-level messages that never reach protocol transitions; any protocol or
heartbeat traffic from a peer counts as evidence of liveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .engine import EventHandle, Simulator


@dataclass
class FailureDetectorConfig:
    """Tunable parameters (the paper's *f*, *g*, and the check cadence)."""

    #: Seconds of silence after which a peer is declared failed (paper's f).
    failure_timeout: float = 20.0
    #: Seconds of silence after which a heartbeat is solicited (paper's g < f).
    heartbeat_timeout: float = 8.0
    #: How often the detector sweeps its monitored peers.
    check_interval: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_timeout >= self.failure_timeout:
            raise ValueError("heartbeat timeout (g) must be smaller than failure timeout (f)")
        if self.check_interval <= 0:
            raise ValueError("check interval must be positive")


@dataclass
class FailureDetectorStats:
    heartbeats_sent: int = 0
    failures_declared: int = 0
    monitored_peers: int = 0


class FailureDetector:
    """Per-node failure detector driving the ``error`` API transition.

    Parameters
    ----------
    send_heartbeat:
        Callback ``(peer_address) -> None`` that transmits a runtime heartbeat
        request to the peer (wired to the node's lowest-layer transport).
    on_failure:
        Callback ``(peer_address) -> None`` invoked when a peer is declared
        failed; the node uses it to fire ``error`` transitions and prune the
        peer from fail-detected neighbor sets.
    """

    def __init__(
        self,
        simulator: Simulator,
        send_heartbeat: Callable[[int], None],
        on_failure: Callable[[int], None],
        config: Optional[FailureDetectorConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.config = config or FailureDetectorConfig()
        self._send_heartbeat = send_heartbeat
        self._on_failure = on_failure
        self._last_heard: dict[int, float] = {}
        self._monitored: dict[int, int] = {}  # peer -> reference count
        self._handle: Optional[EventHandle] = None
        self.stats = FailureDetectorStats()
        self._running = False

    # ----------------------------------------------------------------- wiring
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_check()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def reset(self) -> None:
        """Forget all monitored peers and liveness history.

        Used by the node's crash path: a fail-stop node loses its detector
        state, and the fresh agent stack built on recovery re-registers its
        monitored peers from scratch.
        """
        self._monitored.clear()
        self._last_heard.clear()
        self.stats.monitored_peers = 0

    def _schedule_check(self) -> None:
        if not self._running:
            return
        self._handle = self.simulator.schedule(
            self.config.check_interval, self._check, label="failure-detector"
        )

    # ------------------------------------------------------------- membership
    def monitor(self, peer: int) -> None:
        """Start (or add a reference to) monitoring *peer*."""
        peer = int(peer)
        self._monitored[peer] = self._monitored.get(peer, 0) + 1
        self._last_heard.setdefault(peer, self.simulator.now)
        self.stats.monitored_peers = len(self._monitored)

    def unmonitor(self, peer: int) -> None:
        """Drop one reference to *peer*; stops monitoring at zero references."""
        peer = int(peer)
        count = self._monitored.get(peer)
        if count is None:
            return
        if count <= 1:
            del self._monitored[peer]
            self._last_heard.pop(peer, None)
        else:
            self._monitored[peer] = count - 1
        self.stats.monitored_peers = len(self._monitored)

    def heard_from(self, peer: int) -> None:
        """Record that any traffic arrived from *peer*."""
        self._last_heard[int(peer)] = self.simulator.now

    def monitored_peers(self) -> list[int]:
        return sorted(self._monitored)

    # ------------------------------------------------------------------ sweep
    def _check(self) -> None:
        now = self.simulator.now
        failed: list[int] = []
        for peer in list(self._monitored):
            silence = now - self._last_heard.get(peer, now)
            if silence >= self.config.failure_timeout:
                failed.append(peer)
            elif silence >= self.config.heartbeat_timeout:
                self.stats.heartbeats_sent += 1
                self._send_heartbeat(peer)
        for peer in failed:
            self.stats.failures_declared += 1
            self._monitored.pop(peer, None)
            self._last_heard.pop(peer, None)
            self._on_failure(peer)
        self.stats.monitored_peers = len(self._monitored)
        self._schedule_check()
