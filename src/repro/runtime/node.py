"""A MACEDON overlay node.

One :class:`MacedonNode` couples, for one emulated host:

* a host address on the network emulator;
* the transport subsystem (the named TCP/UDP/SWP instances the lowest-layer
  protocol declared);
* a :class:`~repro.runtime.stack.ProtocolStack` of agents;
* a failure detector feeding ``error`` API transitions;
* the application's registered upcall handlers.

It also implements the runtime side of the MACEDON API: ``macedon_init`` and
the data/control calls are forwarded to the highest agent in the stack.

The node is clock- and wire-agnostic: ``simulator`` may be any
:class:`~repro.runtime.driver.Driver` (the discrete-event
:class:`~repro.runtime.engine.Simulator` or the wall-clock
:class:`~repro.live.driver.LiveDriver`), and ``emulator`` anything providing
the network surface the node and its transports use (``attach_host`` /
``set_receive_callback`` / ``send`` / ``detach_host`` / ``reattach_host``) —
the in-process :class:`~repro.network.emulator.NetworkEmulator` or the
socket-backed :class:`~repro.transport.udp.SocketUdpNetwork`.  The same
protocol stack therefore runs in simulation and in live deployment, which is
the paper's central claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Type

from ..api.handlers import Handlers
from ..network.emulator import NetworkEmulator
from ..transport.base import TransportKind
from ..transport.demux import TransportHost
from .agent import Agent, TransitionContext
from .engine import Simulator
from .failure import FailureDetector, FailureDetectorConfig
from .messages import Message
from .stack import ProtocolStack
from .tracing import Tracer


@dataclass
class _Heartbeat:
    """Runtime-level heartbeat request/response payload (never reaches agents)."""

    kind: str  # "ping" or "pong"
    size: int = 8


class MacedonNode:
    """One overlay participant: transports + agent stack + application handlers."""

    def __init__(
        self,
        simulator: "Simulator",   # any Driver (sim or live); see module docstring
        emulator: "NetworkEmulator",   # any network backend (emulator or sockets)
        agent_classes: Sequence[Type[Agent]],
        *,
        tracer: Optional[Tracer] = None,
        topology_node: Optional[int] = None,
        strict_locking: bool = True,
        failure_config: Optional[FailureDetectorConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.emulator = emulator
        self.tracer = tracer if tracer is not None else Tracer()
        self.strict_locking = strict_locking
        self.handlers = Handlers()
        self._agent_classes = list(agent_classes)
        self._failure_config = failure_config

        host = emulator.attach_host(topology_node)
        self.address: int = host.address
        self.host = host
        self.transport_host = TransportHost(simulator, emulator, self.address)
        self.transport_host.set_deliver_upcall(self._on_transport_deliver)

        self.failure_detector = FailureDetector(
            simulator,
            send_heartbeat=self._send_heartbeat,
            on_failure=self._on_peer_failure,
            config=failure_config,
        )

        self.stack = ProtocolStack(self, self._agent_classes)
        self.stack.validate_layering()
        self._declare_transports()
        self.initialized = False
        self.crashed = False
        #: Lifecycle counters (how often this node fail-stopped / recovered).
        self.crash_count = 0
        self.recover_count = 0

    # ------------------------------------------------------------------- setup
    def _declare_transports(self) -> None:
        lowest = self.stack.lowest
        declarations = lowest.TRANSPORT_DECLS
        if not declarations:
            self.transport_host.ensure_default()
            return
        for kind_name, instance_name in declarations:
            kind = TransportKind.parse(kind_name)
            self.transport_host.declare(kind, instance_name)
        # The heartbeat path needs some transport even if the protocol binds
        # every declared instance to specific messages.
        self._heartbeat_transport = declarations[0][1]

    @property
    def heartbeat_transport(self) -> str:
        declared = self.stack.lowest.TRANSPORT_DECLS
        if declared:
            return declared[0][1]
        return self.transport_host.DEFAULT_TRANSPORT

    # --------------------------------------------------------------- lifecycle
    @property
    def alive(self) -> bool:
        return not self.crashed

    def crash(self) -> None:
        """Fail-stop this node (the scenario engine's kill primitive).

        Everything that could generate future events is silenced: protocol
        and runtime timers are cancelled, the transport subsystem drops its
        retransmission state and mutes both directions, the failure detector
        stops sweeping and forgets its peers, and the emulated host detaches
        so in-flight packets addressed to it are dropped.  Peers keep their
        own failure detectors running, which is exactly what drives their
        ``error`` API transitions *f* seconds of silence later.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.initialized = False
        self.failure_detector.stop()
        self.failure_detector.reset()
        for agent in self.stack:
            agent.shutdown()
        self.transport_host.shutdown()
        self.emulator.detach_host(self.address)

    def recover(self, bootstrap: Optional[int] = None) -> None:
        """Restart a crashed node with a factory-fresh protocol stack.

        The host reattaches at its old address and attachment point, a new
        transport subsystem replaces the dead one (re-registering the
        network receive callback), the failure detector starts from a clean
        slate, and the agent stack is rebuilt from the original classes —
        fail-stop recovery loses all protocol state, as in the paper's
        ModelNet kill/restart runs.  Passing *bootstrap* immediately re-joins
        the overlay via :meth:`macedon_init`; omit it to leave the node up
        but idle.  Idempotent for nodes that are not crashed.
        """
        if not self.crashed:
            return
        self.recover_count += 1
        self.emulator.reattach_host(self.address)
        self.transport_host = TransportHost(self.simulator, self.emulator,
                                            self.address,
                                            epoch=self.crash_count)
        self.transport_host.set_deliver_upcall(self._on_transport_deliver)
        self.failure_detector = FailureDetector(
            self.simulator,
            send_heartbeat=self._send_heartbeat,
            on_failure=self._on_peer_failure,
            config=self._failure_config,
        )
        self.stack = ProtocolStack(self, self._agent_classes)
        self.stack.validate_layering()
        self._declare_transports()
        self.crashed = False
        if bootstrap is not None:
            self.macedon_init(bootstrap)

    # --------------------------------------------------------------- MACEDON API
    def macedon_init(self, bootstrap: int, protocol: Optional[str] = None) -> None:
        """Initialise the stack (``macedon_init`` in Figure 3).

        Agents are initialised bottom-up so a higher layer can immediately use
        its substrate from inside its own ``init`` transition.  *protocol* is
        accepted for API fidelity; the stack already fixes which protocols run.
        """
        del protocol  # The stack composition determines the protocols.
        if self.crashed:
            raise RuntimeError(
                f"macedon_init on crashed node {self.address}; call recover() first")
        self.failure_detector.start()
        for agent in self.stack:
            agent.api_call("init", TransitionContext(bootstrap=int(bootstrap)))
        self.initialized = True

    def macedon_register_handlers(self, deliver=None, forward=None,
                                  notify=None, upcall=None) -> None:
        """Install the application's upcall handlers.

        Accepts either the four callables or, as a shim for the historical
        tuple wiring, a ready-made :class:`Handlers` instance positionally:
        ``macedon_register_handlers(Handlers(...))``.  New applications
        should subclass :class:`repro.apps.AppBase` instead.
        """
        if isinstance(deliver, Handlers):
            if forward is not None or notify is not None or upcall is not None:
                raise TypeError(
                    "pass either a Handlers instance or individual handlers, "
                    "not both")
            self.handlers = deliver
            return
        self.handlers = Handlers(deliver=deliver, forward=forward,
                                 notify=notify, upcall=upcall)

    def macedon_route(self, dest_key: int, payload: Any, size: int,
                      priority: int = -1) -> Any:
        return self.stack.highest.api_call("route", TransitionContext(
            dest_key=int(dest_key), payload=payload, payload_size=size,
            priority=priority))

    def macedon_routeIP(self, dest: int, payload: Any, size: int,
                        priority: int = -1) -> Any:
        return self.stack.highest.api_call("routeIP", TransitionContext(
            dest=int(dest), payload=payload, payload_size=size, priority=priority))

    def macedon_multicast(self, group: int, payload: Any, size: int,
                          priority: int = -1) -> Any:
        return self.stack.highest.api_call("multicast", TransitionContext(
            group=int(group), payload=payload, payload_size=size, priority=priority))

    def macedon_anycast(self, group: int, payload: Any, size: int,
                        priority: int = -1) -> Any:
        return self.stack.highest.api_call("anycast", TransitionContext(
            group=int(group), payload=payload, payload_size=size, priority=priority))

    def macedon_collect(self, group: int, payload: Any, size: int,
                        priority: int = -1) -> Any:
        return self.stack.highest.api_call("collect", TransitionContext(
            group=int(group), payload=payload, payload_size=size, priority=priority))

    def macedon_create_group(self, group: int) -> Any:
        return self.stack.highest.api_call("create_group",
                                           TransitionContext(group=int(group)))

    def macedon_join(self, group: int) -> Any:
        return self.stack.highest.api_call("join", TransitionContext(group=int(group)))

    def macedon_leave(self, group: int) -> Any:
        return self.stack.highest.api_call("leave", TransitionContext(group=int(group)))

    # ------------------------------------------------------------------ the wire
    def send_wire_message(self, transport_name: str, dest: int, message: Message,
                          payload_tag: Optional[str] = None) -> None:
        """Transmit a lowest-layer protocol message via the named transport."""
        self.transport_host.send(transport_name, dest, message, message.size,
                                 payload_tag)

    def _on_transport_deliver(self, src: int, payload: Any, size: int,
                              transport_name: str) -> None:
        self.failure_detector.heard_from(src)
        if isinstance(payload, _Heartbeat):
            if payload.kind == "ping":
                pong = _Heartbeat(kind="pong")
                self.transport_host.send(self.heartbeat_transport, src, pong, pong.size)
            return
        if not isinstance(payload, Message):
            # Unknown wire payload; count it in traces and drop.
            self.tracer.record(self.stack.lowest.TRACE, self.simulator.now,
                               self.address, "runtime", "error",
                               f"unknown wire payload from {src}")
            return
        message = payload
        message.source = src
        agent = self.stack.find_for_message(message.protocol) or self.stack.lowest
        if agent._trace_med:   # "message_recv" records at TraceLevel.MED
            agent.trace("message_recv", message.name, source=src, size=size)
        agent.receive_message(message, direction="recv")

    # -------------------------------------------------------------- failure path
    def _send_heartbeat(self, peer: int) -> None:
        ping = _Heartbeat(kind="ping")
        self.transport_host.send(self.heartbeat_transport, peer, ping, ping.size)

    def _on_peer_failure(self, peer: int) -> None:
        for agent in self.stack:
            agent.peer_failed(peer)

    # --------------------------------------------------------- application upcalls
    def app_deliver(self, agent: Agent, payload: Any, size: int, mtype: Any) -> None:
        if self.handlers.deliver is not None:
            self.handlers.deliver(payload, size, mtype)

    def app_forward(self, agent: Agent, payload: Any, size: int, mtype: Any,
                    next_hop: Optional[int], next_hop_key: Optional[int]):
        if self.handlers.forward is not None:
            allow = self.handlers.forward(payload, size, mtype, next_hop, next_hop_key)
            return (bool(allow), None)
        return (True, None)

    def app_notify(self, agent: Agent, neighbors: list[int], nbr_type: int) -> None:
        if self.handlers.notify is not None:
            self.handlers.notify(nbr_type, neighbors)

    def app_upcall(self, agent: Agent, op: Any, arg: Any) -> Any:
        if self.handlers.upcall is not None:
            return self.handlers.upcall(op, arg)
        return None

    # ------------------------------------------------------------------ helpers
    def agent(self, protocol: str) -> Agent:
        """The agent running *protocol* on this node."""
        return self.stack.agent(protocol)

    @property
    def highest_agent(self) -> Agent:
        return self.stack.highest

    @property
    def lowest_agent(self) -> Agent:
        return self.stack.lowest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MacedonNode(addr={self.address}, stack={self.stack.describe()})"
