"""The timer subsystem.

A ``mac`` state-variable block may declare timers with an optional default
period::

    state_variables {
        timer keep_probing;
        timer probe_requester 5.0;
    }

Timer expirations are events that trigger timer transitions.  The agent owns
one :class:`ProtocolTimer` per declaration and exposes the paper's
``timer_sched`` / ``timer_resched`` / ``timer_cancel`` primitives on top of
it.  Timers are one-shot: periodic behaviour is expressed (exactly as in the
paper's Overcast/Chord specs) by the transition rescheduling its own timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Simulator


class TimerError(RuntimeError):
    """Raised for unknown timers or scheduling misuse."""


@dataclass(frozen=True)
class TimerSpec:
    """A declared timer: its name and optional default period in seconds."""

    name: str
    period: Optional[float] = None


class ProtocolTimer:
    """One named timer owned by an agent instance.

    Timers are the protocol plane's per-send churn: every periodic transition
    reschedules its own timer, so the old one-``EventHandle``-per-fire scheme
    allocated an ``_Event`` + handle + label string for every maintenance
    beat of every node.  The fast path instead rides the kernel's
    generation-counter entries (:meth:`Simulator.schedule_gen`): one shared
    one-int *cell* per timer, bumped to cancel, with the ``_armed`` flag
    maintaining the kernel's one-pending-entry-per-cell invariant.
    """

    __slots__ = ("spec", "simulator", "_on_expire", "_cell", "_armed",
                 "_deadline", "fire_count")

    def __init__(self, spec: TimerSpec, simulator: Simulator,
                 on_expire: Callable[[str], None]) -> None:
        self.spec = spec
        self.simulator = simulator
        self._on_expire = on_expire
        #: Generation cell shared with the kernel's heap entries; bumping the
        #: int cancels whatever entry captured the previous value.
        self._cell = [0]
        self._armed = False
        self._deadline = 0.0
        self.fire_count = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scheduled(self) -> bool:
        return self._armed

    @property
    def expires_at(self) -> Optional[float]:
        if not self._armed:
            return None
        return self._deadline

    def schedule(self, delay: Optional[float] = None) -> None:
        """Schedule the timer *delay* seconds from now.

        With no explicit delay, the declared default period is used; a timer
        declared without a period must always be given an explicit delay.
        Scheduling an already-scheduled timer pushes the expiration out
        (i.e. behaves like the paper's ``timer_resched``).
        """
        if delay is None:
            delay = self.spec.period
        if delay is None:
            raise TimerError(
                f"timer {self.name!r} has no default period; pass an explicit delay"
            )
        if delay < 0:
            raise TimerError(f"timer {self.name!r} scheduled with negative delay {delay}")
        simulator = self.simulator
        if self._armed:
            simulator.cancel_gen(self._cell)
        self._armed = True
        self._deadline = simulator._now + delay
        simulator.schedule_gen(delay, self._fire, self._cell)

    def reschedule(self, delay: Optional[float] = None) -> None:
        """Alias for :meth:`schedule`; mirrors the paper's ``timer_resched``."""
        self.schedule(delay)

    def cancel(self) -> None:
        if self._armed:
            self._armed = False
            self.simulator.cancel_gen(self._cell)

    def _fire(self) -> None:
        self._armed = False
        self.fire_count += 1
        self._on_expire(self.spec.name)


class TimerTable:
    """All timers of one agent, addressable by name."""

    def __init__(self, simulator: Simulator,
                 on_expire: Callable[[str], None]) -> None:
        self._simulator = simulator
        self._on_expire = on_expire
        self._timers: dict[str, ProtocolTimer] = {}

    def declare(self, spec: TimerSpec) -> ProtocolTimer:
        if spec.name in self._timers:
            raise TimerError(f"timer {spec.name!r} declared twice")
        timer = ProtocolTimer(spec, self._simulator, self._on_expire)
        self._timers[spec.name] = timer
        return timer

    def get(self, name: str) -> ProtocolTimer:
        try:
            return self._timers[name]
        except KeyError as exc:
            raise TimerError(
                f"unknown timer {name!r} (declared: {sorted(self._timers)})"
            ) from exc

    def cancel_all(self) -> None:
        for timer in self._timers.values():
            timer.cancel()

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)
