"""The timer subsystem.

A ``mac`` state-variable block may declare timers with an optional default
period::

    state_variables {
        timer keep_probing;
        timer probe_requester 5.0;
    }

Timer expirations are events that trigger timer transitions.  The agent owns
one :class:`ProtocolTimer` per declaration and exposes the paper's
``timer_sched`` / ``timer_resched`` / ``timer_cancel`` primitives on top of
it.  Timers are one-shot: periodic behaviour is expressed (exactly as in the
paper's Overcast/Chord specs) by the transition rescheduling its own timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .engine import EventHandle, Simulator


class TimerError(RuntimeError):
    """Raised for unknown timers or scheduling misuse."""


@dataclass(frozen=True)
class TimerSpec:
    """A declared timer: its name and optional default period in seconds."""

    name: str
    period: Optional[float] = None


class ProtocolTimer:
    """One named timer owned by an agent instance."""

    def __init__(self, spec: TimerSpec, simulator: Simulator,
                 on_expire: Callable[[str], None]) -> None:
        self.spec = spec
        self.simulator = simulator
        self._on_expire = on_expire
        self._handle: Optional[EventHandle] = None
        self.fire_count = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scheduled(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        if not self.scheduled:
            return None
        return self._handle.time

    def schedule(self, delay: Optional[float] = None) -> None:
        """Schedule the timer *delay* seconds from now.

        With no explicit delay, the declared default period is used; a timer
        declared without a period must always be given an explicit delay.
        Scheduling an already-scheduled timer pushes the expiration out
        (i.e. behaves like the paper's ``timer_resched``).
        """
        if delay is None:
            delay = self.spec.period
        if delay is None:
            raise TimerError(
                f"timer {self.name!r} has no default period; pass an explicit delay"
            )
        if delay < 0:
            raise TimerError(f"timer {self.name!r} scheduled with negative delay {delay}")
        self.cancel()
        self._handle = self.simulator.schedule(
            delay, self._fire, label=f"timer:{self.name}"
        )

    def reschedule(self, delay: Optional[float] = None) -> None:
        """Alias for :meth:`schedule`; mirrors the paper's ``timer_resched``."""
        self.schedule(delay)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.fire_count += 1
        self._on_expire(self.name)


class TimerTable:
    """All timers of one agent, addressable by name."""

    def __init__(self, simulator: Simulator,
                 on_expire: Callable[[str], None]) -> None:
        self._simulator = simulator
        self._on_expire = on_expire
        self._timers: dict[str, ProtocolTimer] = {}

    def declare(self, spec: TimerSpec) -> ProtocolTimer:
        if spec.name in self._timers:
            raise TimerError(f"timer {spec.name!r} declared twice")
        timer = ProtocolTimer(spec, self._simulator, self._on_expire)
        self._timers[spec.name] = timer
        return timer

    def get(self, name: str) -> ProtocolTimer:
        try:
            return self._timers[name]
        except KeyError as exc:
            raise TimerError(
                f"unknown timer {name!r} (declared: {sorted(self._timers)})"
            ) from exc

    def cancel_all(self) -> None:
        for timer in self._timers.values():
            timer.cancel()

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)
