"""Read/write serialization of protocol instances.

The paper's key concurrency idea is the split between *control* transitions
(which modify node state and take the protocol instance's lock for writing)
and *data* transitions (which only read node state and take the lock shared,
so many application threads can push data through the overlay in parallel).

The reproduction runs protocols on a single deterministic event loop, so the
lock cannot be contended in real time; what we preserve — and make checkable —
is the *classification*:

* every transition executes under an explicit lock mode (``read`` by
  declaration, ``write`` by default, exactly as in the grammar);
* write-primitives (``state_change``, ``neighbor_add``, assignments to state
  variables via ``set_var``…) assert that the current mode allows writing, so
  a mis-declared ``locking read`` transition is caught instead of silently
  racing (the bug class the paper's design prevents);
* acquisition counts and "would-have-blocked" statistics are recorded, which
  the locking ablation benchmark uses to estimate the parallelism a
  multi-threaded deployment would get from read/write splitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class LockingViolation(RuntimeError):
    """A transition declared ``locking read`` attempted to modify node state."""


@dataclass
class LockStats:
    """Counters describing how the instance lock was used."""

    read_acquisitions: int = 0
    write_acquisitions: int = 0
    #: Number of nested acquisitions (a transition invoking another transition).
    nested_acquisitions: int = 0
    #: Writes attempted while only a read lock was held (strict mode raises).
    violations: int = 0

    @property
    def total_acquisitions(self) -> int:
        return self.read_acquisitions + self.write_acquisitions

    def read_fraction(self) -> float:
        total = self.total_acquisitions
        if total == 0:
            return 0.0
        return self.read_acquisitions / total


class InstanceLock:
    """The per-protocol-instance read/write lock of the MACEDON runtime.

    Parameters
    ----------
    strict:
        When True (the default), a write primitive invoked from a read-locked
        transition raises :class:`LockingViolation`.  When False the event is
        only counted — useful when intentionally benchmarking a mis-declared
        protocol.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.stats = LockStats()
        self._mode_stack: list[str] = []
        # One reusable scope per mode: every transition dispatch enters a
        # lock scope, so the @contextmanager generator machinery (one
        # generator + helper object per acquisition) was measurable
        # protocol-plane overhead.  The scopes are stateless — all state
        # lives in the mode stack — so nesting reuses them safely.
        self._read_scope = _LockScope(self, "read")
        self._write_scope = _LockScope(self, "write")

    @property
    def current_mode(self) -> Optional[str]:
        """``"read"``, ``"write"``, or None when no transition is executing."""
        return self._mode_stack[-1] if self._mode_stack else None

    @property
    def held(self) -> bool:
        return bool(self._mode_stack)

    def acquire(self, mode: str) -> "_LockScope":
        """Context manager holding the lock in *mode* ("read" or "write")."""
        if mode == "write":
            return self._write_scope
        if mode == "read":
            return self._read_scope
        raise ValueError(f"unknown lock mode {mode!r}")

    def assert_writable(self, what: str) -> None:
        """Called by write primitives; enforces the declared transition class."""
        mode = self._mode_stack[-1] if self._mode_stack else None
        if mode == "read":
            self.stats.violations += 1
            if self.strict:
                raise LockingViolation(
                    f"{what} attempted inside a transition declared 'locking read'"
                )

    # Explicit primitives the paper exposes for intra-transition locking.
    def lock_write(self) -> "_LockScope":
        """The paper's ``Lock_Write()`` — explicit write lock inside a transition."""
        return self._write_scope

    def lock_read(self) -> "_LockScope":
        """The paper's ``Lock_Read()``."""
        return self._read_scope


class _LockScope:
    """Reusable ``with``-scope for one lock mode.

    Stateless between entries (the mode stack carries all state), so a single
    instance per (lock, mode) pair serves arbitrarily nested acquisitions.
    """

    __slots__ = ("_lock", "_mode")

    def __init__(self, lock: InstanceLock, mode: str) -> None:
        self._lock = lock
        self._mode = mode

    def __enter__(self) -> None:
        lock = self._lock
        stats = lock.stats
        stack = lock._mode_stack
        if stack:
            stats.nested_acquisitions += 1
        if self._mode == "read":
            stats.read_acquisitions += 1
        else:
            stats.write_acquisitions += 1
        stack.append(self._mode)

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self._lock._mode_stack.pop()
        return False
