"""MACEDON reproduction: a methodology for automatically creating, evaluating,
and designing overlay networks (NSDI 2004), rebuilt as a Python library.

The package is organised as the paper's system is:

* :mod:`repro.dsl` — the mac specification language;
* :mod:`repro.codegen` — the code generator (mac → Python agents);
* :mod:`repro.runtime` — the shared engine: event kernel, agents, layering,
  timers, locking, failure detection, tracing;
* :mod:`repro.network` — the emulated network substrate (the ModelNet role);
* :mod:`repro.transport` — TCP/UDP/SWP transport service classes;
* :mod:`repro.api` — the overlay-generic MACEDON API;
* :mod:`repro.protocols` — the bundled overlay specifications (Chord, Pastry,
  Scribe, SplitStream, Overcast, NICE, Bullet, AMMO, RandTree);
* :mod:`repro.baselines` — independently written comparison implementations
  (lsd-style Chord, FreePastry-style Pastry);
* :mod:`repro.apps` — reusable applications (replicated KV, topic pub/sub,
  streaming, random routing) built on :class:`repro.apps.AppBase`;
* :mod:`repro.eval` — metrics and the experiment harness reproducing the
  paper's evaluation.

One front door runs any scenario in any mode (see :mod:`repro.facade`)::

    import repro
    result = repro.run(spec)                  # single-process simulation
    result = repro.run(spec, shards=4)        # sharded parallel kernel
    summary = repro.run(spec, seeds=5)        # multi-seed replication
    live = repro.run(spec, mode="live")       # real processes, real UDP
"""

from .api import MacedonAPI
from .codegen import compile_mac, get_registry, load_protocol, load_stack
from .facade import run
from .network import NetworkEmulator, multi_site_topology, transit_stub_topology
from .runtime import MacedonNode, Simulator, Tracer

__version__ = "1.0.0"

__all__ = [
    "MacedonAPI",
    "run",
    "compile_mac",
    "get_registry",
    "load_protocol",
    "load_stack",
    "NetworkEmulator",
    "multi_site_topology",
    "transit_stub_topology",
    "MacedonNode",
    "Simulator",
    "Tracer",
    "__version__",
]
