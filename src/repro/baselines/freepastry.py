"""FreePastry/RMI baseline (the comparison system in Figure 11).

The MACEDON paper attributes FreePastry's higher per-packet latency largely to
Java RMI overhead and could not run it beyond ~100 participants (two per
physical machine) for memory reasons.  This baseline runs the same Pastry
routing algorithm but models those runtime costs explicitly:

* every message transmission pays a fixed marshalling/dispatch delay
  (:attr:`FreePastryAgent.RMI_OVERHEAD` seconds), charged before the packet
  enters the network — the RMI serialization + remote dispatch cost;
* the process-wide participant count is capped
  (:attr:`FreePastryAgent.MAX_POPULATION`); constructing more nodes raises
  :class:`FreePastryCapacityError`, reproducing the "insufficient memory
  beyond 100 participants" wall.
"""

from __future__ import annotations

from typing import Optional

from ..protocols import pastry_agent


class FreePastryCapacityError(RuntimeError):
    """Raised when more FreePastry instances are created than memory allows."""


class _FreePastryFactory:
    _cached = None

    @classmethod
    def get(cls):
        if cls._cached is None:
            base = pastry_agent()

            class FreePastryAgentImpl(base):  # type: ignore[misc,valid-type]
                """Pastry with FreePastry/RMI cost characteristics."""

                PROTOCOL = "freepastry"
                #: Marshalling + RMI dispatch delay added to every message send.
                #: Calibrated so the per-packet latency gap matches the ~80 %
                #: reduction the paper reports for MACEDON over FreePastry/RMI.
                RMI_OVERHEAD = 0.100
                #: Additional per-received-message dispatch (deserialisation) delay.
                RMI_RECEIVE_OVERHEAD = 0.050
                #: Largest population the baseline supports before exhausting memory.
                MAX_POPULATION = 100
                #: Process-wide instance counter.
                population = 0

                def __init__(self, node) -> None:
                    type(self).population += 1
                    if type(self).population > self.MAX_POPULATION:
                        raise FreePastryCapacityError(
                            f"FreePastry baseline cannot run more than "
                            f"{self.MAX_POPULATION} participants (out of memory)"
                        )
                    super().__init__(node)

                def send_msg(self, name: str, dest: int, *, priority: int = -1,
                             payload=None, payload_size: int = 0,
                             tag: Optional[str] = None, **fields) -> None:
                    """Delay every transmission by the RMI marshalling overhead."""
                    overhead = self.RMI_OVERHEAD + self.RMI_RECEIVE_OVERHEAD
                    self.simulator.schedule(
                        overhead, super().send_msg, name, dest,
                        priority=priority, payload=payload,
                        payload_size=payload_size, tag=tag,
                        label="freepastry-rmi", **fields)

            cls._cached = FreePastryAgentImpl
        return cls._cached


def FreePastryAgent():
    """Return the FreePastry baseline agent class."""
    return _FreePastryFactory.get()


def reset_freepastry_population() -> None:
    """Reset the process-wide participant counter (between experiments/tests)."""
    agent_class = _FreePastryFactory.get()
    agent_class.population = 0
