"""Baseline (non-MACEDON) implementations used by the comparison figures.

* :mod:`repro.baselines.lsd_chord` — a Chord participant whose fix-fingers
  timer adapts dynamically, standing in for MIT's ``lsd`` distribution in the
  Figure-10 convergence comparison.
* :mod:`repro.baselines.freepastry` — a Pastry participant with FreePastry/RMI
  cost characteristics (per-message marshalling delay, per-node memory
  ceiling), standing in for the FreePastry release in the Figure-11 latency
  comparison.
"""

from .freepastry import FreePastryAgent, FreePastryCapacityError, reset_freepastry_population
from .lsd_chord import LsdChordAgent

__all__ = [
    "FreePastryAgent",
    "FreePastryCapacityError",
    "reset_freepastry_population",
    "LsdChordAgent",
]
