"""lsd-style Chord baseline (the MIT distribution in Figure 10).

The MACEDON paper compares its Chord implementation (static fix-fingers timer,
1 s and 20 s settings) against MIT's ``lsd``, whose distinguishing runtime
behaviour for that experiment is a *dynamically adjusted* fix-fingers period:
the repair timer backs off while the routing table is already correct and
tightens when repairs are still finding stale entries.  This baseline runs the
same Chord algorithm but applies that adaptive policy, so the Figure-10
comparison isolates exactly the timer strategy — which is the point the paper
makes ("the optimal strategy for dynamically adjusting protocol parameters is
unclear").
"""

from __future__ import annotations

from ..protocols import chord_agent
from ..runtime.messages import Message


def _build_base():
    """The compiled MACEDON Chord agent class (loaded lazily)."""
    return chord_agent()


class _LsdChordFactory:
    """Lazily constructs the LsdChordAgent subclass (the DSL class is compiled on demand)."""

    _cached = None

    @classmethod
    def get(cls):
        if cls._cached is None:
            base = _build_base()

            class LsdChordAgentImpl(base):  # type: ignore[misc,valid-type]
                """Chord with lsd-style adaptive fix-fingers period."""

                PROTOCOL = "lsd_chord"
                #: Bounds of the adaptive period (seconds), mirroring lsd's behaviour
                #: of backing off when the table is stable.
                MIN_FIX_PERIOD = 0.5
                MAX_FIX_PERIOD = 16.0

                def __init__(self, node) -> None:
                    super().__init__(node)
                    self.fix_adjustments = 0

                def receive_message(self, message: Message, direction: str = "recv") -> bool:
                    if message.name == "lookup_reply" and \
                            message.fields.get("purpose") == self.CONSTANTS["PURPOSE_FIX"]:
                        self._adapt_fix_period(message)
                    return super().receive_message(message, direction)

                def _adapt_fix_period(self, message: Message) -> None:
                    """Halve the period when a repair changed an entry, double it otherwise."""
                    index = message.fields.get("idx")
                    incoming = (message.fields.get("owner_key"),
                                message.fields.get("owner"))
                    current = self.finger_table().get(index)
                    period = self.fix_period or self.CONSTANTS["DEFAULT_FIX_PERIOD"]
                    if current == incoming:
                        period = min(period * 2.0, self.MAX_FIX_PERIOD)
                    else:
                        period = max(period / 2.0, self.MIN_FIX_PERIOD)
                    self.fix_period = period
                    self.fix_adjustments += 1

            cls._cached = LsdChordAgentImpl
        return cls._cached


def LsdChordAgent():
    """Return the lsd-style Chord agent class (callable to defer DSL compilation)."""
    return _LsdChordFactory.get()
