"""Unified observability: metrics registry, trace artifacts, causal tracing.

One opt-in knob (:class:`ObsConfig`, threaded through
``ScenarioSpec.obs`` / ``repro.run(obs=...)`` / ``LiveClusterConfig.obs``)
turns on the same three capabilities in every execution mode:

* a :class:`MetricsRegistry` snapshotting to a versioned ``repro.obs/1``
  JSON artifact with a mode-independent key set
  (:func:`~repro.obs.probes.base_registry`);
* streaming ``repro.trace/1`` JSONL export from the runtime
  :class:`~repro.runtime.tracing.Tracer`, with per-run category-level
  overrides;
* causal message tracing (:class:`CausalLog` in sim,
  :class:`LiveCausalLog` over a wire-frame piggyback in live) feeding
  route-path reconstruction (:func:`reconstruct_routes`,
  ``scripts/run_trace.py``).

With ``obs`` unset the runtime takes its historical code paths bit for
bit; see ``docs/OBSERVABILITY.md``.
"""

from .causal import CausalLog, LiveCausalLog
from .config import ObsConfig, build_tracer
from .probes import artifact, base_registry, fill_live, fill_sim
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (OBS_SCHEMA, TRACE_SCHEMA, TraceSink, load_obs_snapshot,
                    load_trace, reconstruct_routes, validate_obs_snapshot,
                    write_obs_snapshot, write_trace_file)

__all__ = [
    "CausalLog",
    "Counter",
    "Gauge",
    "Histogram",
    "LiveCausalLog",
    "MetricsRegistry",
    "OBS_SCHEMA",
    "ObsConfig",
    "TRACE_SCHEMA",
    "TraceSink",
    "artifact",
    "base_registry",
    "build_tracer",
    "fill_live",
    "fill_sim",
    "load_obs_snapshot",
    "load_trace",
    "reconstruct_routes",
    "validate_obs_snapshot",
    "write_obs_snapshot",
    "write_trace_file",
]
