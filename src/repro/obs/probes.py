"""The canonical instrument namespace and per-mode fill helpers.

Every execution mode — single-process sim, the sharded kernel, the live
cluster — snapshots through :func:`base_registry`, which pre-creates the
full instrument set.  That makes the ``repro.obs/1`` key set *structural*:
a counter that cannot tick in some mode (``errors.decode_errors`` in sim,
``shard.windows`` in live) is still present at zero, so snapshots from
different modes of the same spec always carry identical keys and can be
diffed field-by-field (the drift harness's requirement).

The fill helpers translate each mode's native accounting into the shared
namespace at end of run; hot-path instruments (``causal.*``,
``shard.windows``/``shard.batch_size``) are instead updated live by the
probe sites themselves.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .registry import MetricsRegistry
from .trace import OBS_SCHEMA

#: Workload end-to-end latency (simulated or wall-clock seconds).
LATENCY_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)
#: Single overlay-hop latency.
HOP_LATENCY_BOUNDS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)
#: Route length in overlay hops (a direct A->B delivery is 1).
ROUTE_HOP_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)
#: Cross-shard packets exchanged per barrier window.
BATCH_BOUNDS = (0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0)

COUNTERS = (
    "engine.events_processed",
    "net.packets_sent",
    "net.packets_delivered",
    "net.packets_dropped",
    "net.bytes_delivered",
    "workload.sent",
    "workload.delivered",
    "workload.duplicates",
    "workload.skipped",
    "errors.callback_errors",
    "errors.decode_errors",
    "errors.reassembly_timeouts",
    "errors.fault_drops",
    "trace.records",
    "trace.dropped",
    "shard.windows",
    "shard.cross_shard_packets",
    "causal.traces",
    "causal.hops",
)

GAUGES = ("nodes.alive", "nodes.total")

HISTOGRAMS = {
    "workload.latency": LATENCY_BOUNDS,
    "causal.hop_latency": HOP_LATENCY_BOUNDS,
    "causal.route_hops": ROUTE_HOP_BOUNDS,
    "shard.batch_size": BATCH_BOUNDS,
}


def base_registry() -> MetricsRegistry:
    """A registry with the full canonical namespace pre-created at zero."""
    registry = MetricsRegistry()
    for name in COUNTERS:
        registry.counter(name)
    for name in GAUGES:
        registry.gauge(name)
    for name, bounds in HISTOGRAMS.items():
        registry.histogram(name, bounds)
    return registry


def artifact(registry: MetricsRegistry, *, mode: str, name: str, seed: int,
             duration: float, extra: Optional[dict] = None) -> dict:
    """Wrap a registry snapshot as a ``repro.obs/1`` document."""
    snapshot = {"schema": OBS_SCHEMA, "mode": mode, "name": name,
                "seed": seed, "duration": duration}
    snapshot.update(registry.snapshot())
    if extra:
        snapshot.update(extra)
    return snapshot


def workload_tallies(compiled_models: Iterable[Any]) \
        -> tuple[int, int, int, int, list[float]]:
    """(sent, delivered, duplicates, skipped, latencies) across all models.

    Route/multicast/pub-sub workloads expose
    :class:`~repro.eval.scenario.WorkloadObservations`-shaped objects;
    KV workloads hang a :class:`~repro.eval.scenario.KvObservations` off
    ``compiled.kv_state`` whose records carry issue/completion timestamps.
    """
    sent = delivered = duplicates = skipped = 0
    latencies: list[float] = []
    for compiled in compiled_models:
        observations = getattr(compiled, "observations", None)
        if observations is None:
            kv_state = getattr(compiled, "kv_state", None)
            observations = getattr(kv_state, "observations", None)
        if observations is None:
            continue
        sent += getattr(observations, "sent", 0)
        skipped += getattr(observations, "skipped", 0)
        duplicates += getattr(observations, "duplicates", 0)
        if hasattr(observations, "latencies"):
            latencies.extend(observations.latencies)
            delivered += getattr(observations, "deliveries",
                                 len(observations.latencies))
        else:
            records = getattr(observations, "records", ())
            delivered += len(records)
            latencies.extend(record[6] - record[5] for record in records)
    return sent, delivered, duplicates, skipped, latencies


def fill_sim(registry: MetricsRegistry, experiment: Any, *,
             events_processed: int, owned_nodes: Iterable[Any],
             causal: Optional[Any] = None,
             cross_shard_packets: int = 0) -> None:
    """Fold one (shard-local or single-process) sim run into *registry*.

    In a sharded run each worker calls this on its private registry with
    its owned nodes and corrected event count; the parent merges the
    shipped snapshots, and the additive semantics line up with the
    metrics-dict merge formulas.
    """
    counter = registry.counter
    stats = experiment.emulator.stats
    counter("engine.events_processed").inc(events_processed)
    counter("net.packets_sent").inc(stats.packets_sent)
    counter("net.packets_delivered").inc(stats.packets_delivered)
    counter("net.packets_dropped").inc(stats.packets_dropped)
    counter("net.bytes_delivered").inc(stats.bytes_delivered)

    sent, delivered, duplicates, skipped, latencies = \
        workload_tallies(experiment.compiled_models)
    counter("workload.sent").inc(sent)
    counter("workload.delivered").inc(delivered)
    counter("workload.duplicates").inc(duplicates)
    counter("workload.skipped").inc(skipped)
    registry.histogram("workload.latency").observe_many(latencies)

    tracer = experiment.tracer
    counter("trace.records").inc(sum(tracer.counts.values()))
    counter("trace.dropped").inc(tracer.dropped)
    counter("shard.cross_shard_packets").inc(cross_shard_packets)

    owned = list(owned_nodes)
    registry.gauge("nodes.alive").add(sum(node.alive for node in owned))
    registry.gauge("nodes.total").add(len(owned))

    if causal is not None:
        causal.finish(registry)


def fill_live(registry: MetricsRegistry, per_node: Iterable[dict], *,
              nodes_total: int, nodes_alive: int) -> list[dict]:
    """Fold live per-node reports into *registry*.

    Returns the merged, time-sorted causal ``route_hop`` records so the
    coordinator can write the ``repro.trace/1`` artifact.
    """
    counter = registry.counter
    latency_histogram = registry.histogram("workload.latency")
    hop_latency = registry.histogram("causal.hop_latency")
    hop_records: list[dict] = []
    for report in per_node:
        socket_stats = report.get("socket") or {}
        counter("engine.events_processed").inc(
            int(report.get("events_processed", 0)))
        counter("net.packets_sent").inc(
            int(socket_stats.get("frames_sent", 0)))
        counter("net.packets_delivered").inc(
            int(socket_stats.get("frames_received", 0)))
        counter("net.packets_dropped").inc(
            int(socket_stats.get("send_drops", 0))
            + int(socket_stats.get("fault_drops", 0)))
        counter("net.bytes_delivered").inc(
            int(socket_stats.get("bytes_received", 0)))
        counter("workload.sent").inc(int(report.get("sent", 0)))
        counter("workload.delivered").inc(int(report.get("delivered", 0)))
        counter("workload.duplicates").inc(int(report.get("duplicates", 0)))
        counter("workload.skipped").inc(int(report.get("skipped", 0)))
        counter("errors.callback_errors").inc(
            int(report.get("callback_error_count", 0)))
        counter("errors.decode_errors").inc(
            int(socket_stats.get("decode_errors", 0)))
        counter("errors.reassembly_timeouts").inc(
            int(socket_stats.get("reassembly_timeouts", 0)))
        counter("errors.fault_drops").inc(
            int(socket_stats.get("fault_drops", 0)))
        trace_stats = report.get("trace") or {}
        counter("trace.records").inc(int(trace_stats.get("records", 0)))
        counter("trace.dropped").inc(int(trace_stats.get("dropped", 0)))
        causal_stats = report.get("causal") or {}
        counter("causal.traces").inc(int(causal_stats.get("traces", 0)))
        counter("causal.hops").inc(int(causal_stats.get("hops", 0)))
        latency_histogram.observe_many(report.get("latencies", ()))
        for record in causal_stats.get("records", ()):
            hop_latency.observe(record["data"]["latency"])
            hop_records.append(record)
    registry.gauge("nodes.alive").set(nodes_alive)
    registry.gauge("nodes.total").set(nodes_total)

    hop_records.sort(key=lambda record: record["t"])
    max_hop: dict[int, int] = {}
    for record in hop_records:
        data = record["data"]
        if data["hop"] > max_hop.get(data["trace_id"], -1):
            max_hop[data["trace_id"]] = data["hop"]
    route_hops = registry.histogram("causal.route_hops")
    for hop in max_hop.values():
        route_hops.observe(hop + 1)
    return hop_records
