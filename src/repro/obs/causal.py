"""Causal message tracing: who forwarded what, where, and how long it took.

A *trace* is one request's journey through the overlay: the packet that
starts it gets a fresh trace id at hop 0, and every packet an agent sends
*while handling a traced delivery* inherits the id with the hop count
bumped.  That works without any protocol cooperation because delivery is
synchronous in both runtimes — the simulator calls the agent's transition
inline from the delivery event, and the live node's transport upcall runs
the handler before returning to the event loop — so a thread/process-local
"current trace" context set around the delivery covers every forward.

Two implementations of the same idea:

* :class:`CausalLog` (sim, sharded) — tags
  :class:`~repro.network.packet.Packet` objects via the emulator's send
  tap and wraps its delivery callback.  The trace fields are ``__slots__``
  on the packet, so the sharded kernel's cross-shard pickle carries them
  between workers for free; per-shard id spaces are disjoint
  (``origin << 48``).
* :class:`LiveCausalLog` (live) — ids are minted per node
  (``address << 40``), and the id/hop/send-timestamp triple rides a
  ``TRACE`` wire frame wrapped around the original frame (see
  :class:`~repro.transport.udp.SocketUdpNetwork`).  Frames are untouched
  when tracing is off.

Both emit ``route_hop`` records with identical ``data`` keys
(``trace_id``, ``hop``, ``src``, ``latency``), which is what makes
``scripts/run_trace.py`` mode-agnostic.

Retransmissions (``copy_for_retransmit``) and timer-driven sends start
fresh traces by design: they are new causal roots, not forwards.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..runtime.tracing import TraceLevel, Tracer


class CausalLog:
    """Simulation-side causal tracer.

    :param tracer: the experiment's shared tracer; hop records land there
        (category ``route_hop``) and stream through its sink if attached.
    :param clock: anything with a ``now`` attribute (the simulator).
    :param registry: optional metrics registry; ``causal.*`` instruments
        are updated live when present.
    :param origin: disambiguates id spaces across shard workers
        (``shard_id + 1`` there, ``0`` single-process).
    """

    def __init__(self, tracer: Tracer, clock: Any, *,
                 registry: Optional[Any] = None, origin: int = 0) -> None:
        self._tracer = tracer
        self._clock = clock
        self._base = origin << 48
        self._next = 0
        #: The trace being handled right now: ``(trace_id, hop)`` while a
        #: traced delivery is on the stack, else ``None``.
        self.ctx: Optional[tuple[int, int]] = None
        self.traces = 0
        self.hop_count = 0
        self._max_hop: dict[int, int] = {}
        if registry is not None:
            self._c_traces = registry.counter("causal.traces")
            self._c_hops = registry.counter("causal.hops")
            self._h_hop_latency = registry.histogram("causal.hop_latency")
        else:
            self._c_traces = self._c_hops = self._h_hop_latency = None

    def install(self, emulator: Any) -> None:
        """Attach to a single-process emulator (both wrappers at once).

        Sharded workers must split this: the delivery wrapper goes in
        *before* ``enter_shard`` (the cross-shard egress closure captures
        the delivery callback by identity) and the send tap *after* it
        (``enter_shard`` swaps ``send`` for the sharded variant).
        """
        emulator.install_delivery_wrapper(self.wrap_delivery)
        emulator.install_send_tap(self.tag)

    # ------------------------------------------------------------------ taps
    def tag(self, packet: Any) -> None:
        """Send tap: stamp the packet with its trace identity."""
        ctx = self.ctx
        if ctx is not None:
            packet.trace_id = ctx[0]
            packet.trace_hop = ctx[1] + 1
        else:
            self._next += 1
            packet.trace_id = self._base | self._next
            packet.trace_hop = 0
            self.traces += 1
            if self._c_traces is not None:
                self._c_traces.inc()

    def wrap_delivery(self, deliver: Any) -> Any:
        """Wrap the emulator's delivery callback: record the hop, set ctx."""
        log = self
        tracer = self._tracer
        clock = self._clock
        max_hop = self._max_hop

        def deliver_traced(packet: Any) -> Any:
            trace_id = packet.trace_id
            if trace_id is None:
                return deliver(packet)
            hop = packet.trace_hop
            now = clock.now
            latency = now - packet.created_at
            log.hop_count += 1
            if log._c_hops is not None:
                log._c_hops.inc()
                log._h_hop_latency.observe(latency)
            if hop > max_hop.get(trace_id, -1):
                max_hop[trace_id] = hop
            tracer.record(TraceLevel.HIGH, now, packet.dst, packet.protocol,
                          "route_hop", f"trace {trace_id} hop {hop}",
                          trace_id=trace_id, hop=hop, src=packet.src,
                          latency=latency)
            prev = log.ctx
            log.ctx = (trace_id, hop)
            try:
                return deliver(packet)
            finally:
                log.ctx = prev

        return deliver_traced

    def finish(self, registry: Any) -> None:
        """Flush end-of-run aggregates (route-length histogram)."""
        route_hops = registry.histogram("causal.route_hops")
        for hop in self._max_hop.values():
            route_hops.observe(hop + 1)


class LiveCausalLog:
    """Live-node causal tracer, driven by the socket transport.

    Hop records are collected locally (bounded) and shipped home in the
    node's result report; the coordinator merges them into one
    ``repro.trace/1`` file.
    """

    #: Per-node bound on retained hop records — a report travels through a
    #: multiprocessing queue, so it must stay modest.  ``hop_count`` keeps
    #: the true total.
    MAX_HOP_RECORDS = 5000

    def __init__(self, address: int,
                 max_hop_records: int = MAX_HOP_RECORDS) -> None:
        self._base = (address & 0xFFFFFF) << 40
        self._next = 0
        self._max = max_hop_records
        self.ctx: Optional[tuple[int, int]] = None
        self.traces = 0
        self.hop_count = 0
        self.hops: list[dict] = []

    def new_trace(self) -> int:
        self._next += 1
        self.traces += 1
        return self._base | self._next

    def on_hop(self, trace_id: int, hop: int, src: int, sent_at: float,
               node: int) -> None:
        now = time.time()
        self.hop_count += 1
        if len(self.hops) < self._max:
            self.hops.append({
                "t": now, "node": node, "proto": "live", "cat": "route_hop",
                "detail": f"trace {trace_id} hop {hop}",
                # Same-machine wall clocks; clamp the microsecond races.
                "data": {"trace_id": trace_id, "hop": hop, "src": src,
                         "latency": max(0.0, now - sent_at)},
            })
