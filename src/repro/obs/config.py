"""Per-run observability configuration.

``ObsConfig`` is the single opt-in knob for the whole layer: a spec (or a
live cluster config) with ``obs=None`` — the default — runs the exact
historical code paths, and the determinism pins
(``tests/eval/test_obs_pin.py``) hold the disabled path byte-identical.
Attaching a config turns on the metrics registry, and optionally the
streaming trace sink, per-run category-level overrides, and causal
message tracing.

The config is a frozen dataclass so it rides inside the frozen
:class:`~repro.eval.scenario.ScenarioSpec` and pickles across the sharded
kernel's fork and the live cluster's spawn unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..runtime.tracing import Tracer


@dataclass(frozen=True)
class ObsConfig:
    """What to observe and where to put it.

    :param trace_path: write every accepted trace record to this JSONL file
        (schema ``repro.trace/1``).  The in-memory ring stays bounded at
        ``max_records``; the file gets everything.  Sharded runs append a
        ``.shard<K>`` suffix per worker (one writer per file).
    :param category_levels: per-run overrides for
        :attr:`~repro.runtime.tracing.Tracer.CATEGORY_LEVELS`, e.g.
        ``{"timer": "low"}`` records timer activity from every agent whose
        ``trace_`` header is at least ``low``.  Values are level names or
        :class:`~repro.runtime.tracing.TraceLevel`.
    :param trace_level: per-run verbosity floor (``"low"``/``"med"``/
        ``"high"``): agents whose spec-declared ``trace_`` header is lower
        record at this level for this run.  Most generated specs declare
        ``trace_ off``, so this is the knob that actually turns their
        category tracing on without editing the spec.
    :param max_records: bound for the tracer's in-memory ring.
    :param causal: tag packets (sim) / wire frames (live) with a trace id
        and hop count, and record per-hop ``route_hop`` trace records for
        route-path reconstruction (``scripts/run_trace.py``).
    :param snapshot_path: write the ``repro.obs/1`` metrics snapshot here
        (it is also returned on the result object either way).
    """

    trace_path: Optional[str] = None
    category_levels: Optional[Mapping[str, str]] = None
    trace_level: Optional[str] = None
    max_records: int = 200_000
    causal: bool = False
    snapshot_path: Optional[str] = None


def build_tracer(config: ObsConfig) -> Tracer:
    """Construct the run's tracer from *config*.

    Must happen before any agent is constructed: agents precompute their
    trace gates from the tracer's category policy at ``__init__`` time
    (see :class:`~repro.runtime.agent.Agent`), so a tracer swapped in
    later would leave stale gates behind.
    """
    sink = None
    if config.trace_path:
        from .trace import TraceSink
        sink = TraceSink(config.trace_path)
    return Tracer(config.max_records,
                  category_levels=config.category_levels,
                  level=config.trace_level, sink=sink)
