"""Versioned trace and metrics artifacts.

Two schemas, mirroring the existing ``repro.fuzz/1`` / ``repro.diff/1``
conventions:

* ``repro.trace/1`` — a JSONL stream.  Line one is a header object with a
  ``schema`` field; every further line is one trace record::

      {"schema": "repro.trace/1", "mode": "sim", ...}
      {"t": 12.5, "node": 3, "proto": "chord", "cat": "route_hop",
       "detail": "...", "data": {"trace_id": 7, "hop": 1, "src": 2,
                                 "latency": 0.041}}

  The same shape is produced by the simulator's streaming
  :class:`TraceSink` and by the live coordinator merging per-node causal
  hop reports, so ``scripts/run_trace.py`` is mode-agnostic.

* ``repro.obs/1`` — a single JSON document holding a
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot` plus run identity
  (mode, name, seed, duration).  Key sets are structural: every mode
  emits the full canonical namespace (zeros where inapplicable), so a
  sim snapshot and a live snapshot of the same spec always share keys.

This module also owns route-path reconstruction from ``route_hop``
records — shared by the report script and the tests.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

TRACE_SCHEMA = "repro.trace/1"
OBS_SCHEMA = "repro.obs/1"

_COMPACT = {"separators": (",", ":"), "default": repr}


class TraceSink:
    """Streaming JSONL writer for trace records.

    Opened lazily on first write so a sink configured in a parent process
    and forked into shard workers never leaves a half-written file behind
    in the parent; workers retarget :attr:`path` (``.shard<K>`` suffix)
    before their first record.
    """

    def __init__(self, path: str, *, meta: Optional[dict] = None) -> None:
        self.path = str(path)
        self.written = 0
        self._meta = dict(meta or {})
        self._fh: Optional[IO[str]] = None

    def _open(self) -> IO[str]:
        fh = open(self.path, "w", encoding="utf-8")
        header = {"schema": TRACE_SCHEMA}
        header.update(self._meta)
        fh.write(json.dumps(header, **_COMPACT) + "\n")
        self._fh = fh
        return fh

    def update_meta(self, **fields) -> None:
        """Add header fields (mode, name, seed); only before the first write."""
        if self._fh is None:
            self._meta.update(fields)

    def write(self, record) -> None:
        fh = self._fh
        if fh is None:
            fh = self._open()
        line = {"t": record.time, "node": record.node,
                "proto": record.protocol, "cat": record.category,
                "detail": record.detail}
        if record.data:
            line["data"] = record.data
        fh.write(json.dumps(line, **_COMPACT) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def write_trace_file(path: str, records: Iterable[dict],
                     meta: Optional[dict] = None) -> int:
    """Write pre-built record dicts as a ``repro.trace/1`` file.

    Used by the live coordinator, whose causal hop records arrive as
    plain tuples in node reports rather than through a :class:`TraceSink`.
    Returns the number of records written.
    """
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {"schema": TRACE_SCHEMA}
        header.update(meta or {})
        fh.write(json.dumps(header, **_COMPACT) + "\n")
        for record in records:
            fh.write(json.dumps(record, **_COMPACT) + "\n")
            written += 1
    return written


def load_trace(path: str) -> tuple[dict, list[dict]]:
    """Read and validate a ``repro.trace/1`` file -> (header, records)."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: not a {TRACE_SCHEMA} file "
                f"(header schema={header.get('schema') if isinstance(header, dict) else None!r})")
        records = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            for key in ("t", "node", "cat"):
                if key not in record:
                    raise ValueError(
                        f"{path}:{lineno}: record missing {key!r}")
            records.append(record)
    return header, records


def write_obs_snapshot(path: str, snapshot: dict) -> None:
    validate_obs_snapshot(snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")


def load_obs_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    validate_obs_snapshot(snapshot)
    return snapshot


def validate_obs_snapshot(snapshot: dict) -> None:
    """Raise :class:`ValueError` unless *snapshot* is a ``repro.obs/1`` doc."""
    if not isinstance(snapshot, dict):
        raise ValueError("obs snapshot must be a dict")
    if snapshot.get("schema") != OBS_SCHEMA:
        raise ValueError(f"obs snapshot schema is {snapshot.get('schema')!r}, "
                         f"expected {OBS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError(f"obs snapshot missing {section!r} section")
    for name, histogram in snapshot["histograms"].items():
        for key in ("bounds", "counts", "count", "sum"):
            if key not in histogram:
                raise ValueError(f"histogram {name!r} missing {key!r}")
        if len(histogram["counts"]) != len(histogram["bounds"]) + 1:
            raise ValueError(f"histogram {name!r}: counts/bounds mismatch")


def reconstruct_routes(records: Iterable[dict]) -> list[dict]:
    """Rebuild per-request route paths from ``route_hop`` records.

    Each causal trace id groups the hops of one message's journey; hop
    *k*'s record carries the receiving ``node``, the sending ``src``, and
    the per-hop ``latency``.  Returns one dict per trace, sorted by first
    hop time::

        {"trace_id": ..., "path": [src0, node0, node1, ...],
         "hops": k, "latencies": [...], "total_latency": ...,
         "start": t0}
    """
    by_trace: dict = {}
    for record in records:
        if record.get("cat") != "route_hop":
            continue
        data = record.get("data") or {}
        trace_id = data.get("trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(trace_id, []).append(record)
    routes = []
    for trace_id, hops in by_trace.items():
        hops.sort(key=lambda record: (record["data"].get("hop", 0),
                                      record["t"]))
        first = hops[0]["data"]
        path = [first.get("src")] + [record["node"] for record in hops]
        latencies = [record["data"].get("latency", 0.0) for record in hops]
        routes.append({
            "trace_id": trace_id,
            "path": path,
            "hops": len(hops),
            "latencies": latencies,
            "total_latency": sum(latencies),
            "start": hops[0]["t"],
        })
    routes.sort(key=lambda route: route["start"])
    return routes
