"""Low-overhead metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is the driver-agnostic probe surface of the observability
layer: the simulation engine, the network emulator, the wire transports,
the sharded kernel, and the live cluster all report through the same three
instrument types, and every execution mode snapshots to the same
``repro.obs/1`` artifact shape (see :mod:`repro.obs.probes` for the
canonical instrument namespace and :mod:`repro.obs.trace` for the artifact
writer).

Design constraints, in order:

* **Zero cost when off.**  No instrument is ever consulted on a hot path
  unless an :class:`~repro.obs.config.ObsConfig` was attached to the run;
  the probes are installed by wrapping (the emulator's bound-method-swap
  pattern), never by inline ``if registry:`` checks in the kernel.
* **Cheap when on.**  ``Counter.inc`` is one integer add; ``Histogram``
  uses precomputed fixed bounds and :func:`bisect.bisect_right` — no
  per-observation allocation.
* **Mergeable.**  Sharded workers each fill a private registry and ship
  ``snapshot()`` payloads through the existing result pipe; the parent
  folds them with :meth:`MetricsRegistry.merge` (counters and gauges add,
  histograms add bucket-wise).  The live coordinator does the same with
  per-node reports.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional, Sequence


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value.

    Merging adds, which is the useful semantic for the gauges we keep
    (``nodes.alive`` summed over shard-owned partitions is the cluster
    total); a mean-style merge can be layered on top if ever needed.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += float(amount)


class Histogram:
    """Fixed-bound bucket histogram with running sum/min/max.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last edge,
    so ``counts`` has ``len(bounds) + 1`` entries.  Fixed bounds make the
    snapshot *drift-ready*: two runs (sim vs live, this build vs last
    build) always produce comparable vectors.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(float(bound) for bound in bounds)
        if not edges or any(later <= earlier
                            for later, earlier in zip(edges[1:], edges)):
            raise ValueError(f"histogram bounds must ascend: {bounds!r}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: dict) -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {payload['bounds']!r} vs "
                f"{list(self.bounds)!r}")
        for index, count in enumerate(payload["counts"]):
            self.counts[index] += count
        self.count += payload["count"]
        self.sum += payload["sum"]
        for key in ("min", "max"):
            theirs = payload.get(key)
            if theirs is None:
                continue
            ours = getattr(self, key)
            if ours is None:
                setattr(self, key, theirs)
            elif key == "min":
                self.min = min(ours, theirs)
            else:
                self.max = max(ours, theirs)


class MetricsRegistry:
    """Named instruments, snapshottable and mergeable.

    Instruments are get-or-create so probe sites never need registration
    order; the canonical namespace (:func:`repro.obs.probes.base_registry`)
    pre-creates every instrument so snapshots from different modes always
    carry identical keys, zeros included.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if bounds is None:
                raise KeyError(f"histogram {name!r} not registered and no "
                               f"bounds given")
            histogram = self._histograms[name] = Histogram(bounds)
        return histogram

    def snapshot(self) -> dict:
        """Plain-data view: ``{"counters": .., "gauges": .., "histograms": ..}``.

        The payload is JSON- and pickle-safe, and is exactly what
        :meth:`merge` accepts — sharded workers return it through the
        result pipe unchanged.
        """
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def merge(self, payload: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).add(value)
        for name, data in payload.get("histograms", {}).items():
            self.histogram(name, data["bounds"]).merge(data)
