"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in environments whose tooling lacks a wheel backend
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
