#!/usr/bin/env python3
"""Stream data over SplitStream/Scribe/Pastry and report per-node bandwidth.

This is a miniature version of the paper's Figure-12 experiment: build a
SplitStream forest, stream fixed-size packets from one source, and report the
average bandwidth each receiver saw — once with the Pastry location cache kept
forever and once with a short cache lifetime.

Run with:  python examples/splitstream_streaming.py
"""

from __future__ import annotations

from repro.apps import StreamReceiver, StreamingSource, bandwidth_timeseries
from repro.eval import ExperimentConfig, OverlayExperiment, mean
from repro.eval.reports import format_series
from repro.protocols import splitstream_stack

NUM_NODES = 25
GROUP = 99
RATE_BPS = 100_000
STREAM_SECONDS = 30.0


def run(cache_lifetime: float) -> float:
    experiment = OverlayExperiment(
        splitstream_stack(),
        ExperimentConfig(num_nodes=NUM_NODES, seed=5, convergence_time=100.0),
    )
    for node in experiment.nodes:
        node.agent("pastry").cache_lifetime = cache_lifetime
    experiment.init_all(staggered=0.2)
    experiment.converge()

    source = experiment.nodes[1]
    source.macedon_create_group(GROUP)
    experiment.run(5.0)
    receivers = []
    for node in experiment.nodes:
        if node is source:
            continue
        receivers.append(StreamReceiver(node))
        node.macedon_join(GROUP)
    experiment.run(30.0)

    start = experiment.simulator.now
    streamer = StreamingSource(source, GROUP, rate_bps=RATE_BPS, packet_bytes=1000)
    streamer.start(duration=STREAM_SECONDS)
    experiment.run(STREAM_SECONDS + 10.0)

    series = bandwidth_timeseries(receivers, start=start,
                                  end=start + STREAM_SECONDS, bucket=5.0)
    label = "no eviction" if cache_lifetime <= 0 else f"{cache_lifetime:.0f}s lifetime"
    print(format_series(f"SplitStream per-node bandwidth ({label})", series,
                        x_label="time s", y_label="bps"))
    average = mean([value for _, value in series])
    print(f"  -> average {average / 1000:.1f} kbps of a {RATE_BPS / 1000:.0f} kbps "
          f"source ({streamer.stats.packets_sent} packets sent)\n")
    return average


def main() -> None:
    keep = run(cache_lifetime=0.0)
    evict = run(cache_lifetime=1.0)
    print(f"location cache disabled eviction vs 1s lifetime: "
          f"{keep / 1000:.1f} kbps vs {evict / 1000:.1f} kbps")


if __name__ == "__main__":
    main()
