#!/usr/bin/env python3
"""Compare several overlays under one identical workload.

The point of MACEDON's shared runtime and generic API is fair comparison:
the exact same application (a multicast latency probe) runs over RandTree,
Overcast, NICE, Scribe/Pastry, and Scribe/Chord, and the same metrics are
extracted for each — latency stretch, mean overlay latency, and link stress.

Run with:  python examples/overlay_comparison.py
"""

from __future__ import annotations

from repro.eval import (
    ExperimentConfig,
    OverlayExperiment,
    link_stress,
    mean,
    relative_delay_penalty,
    stretch_samples,
)
from repro.eval.reports import format_table
from repro.protocols import nice_agent, overcast_agent, randtree_agent, scribe_stack

NUM_NODES = 24
GROUP = 1


def evaluate(name: str, stack) -> tuple[str, float, float, float]:
    experiment = OverlayExperiment(
        stack, ExperimentConfig(num_nodes=NUM_NODES, seed=3, convergence_time=120.0))
    experiment.init_all(staggered=0.2)
    experiment.converge()
    source = experiment.nodes[0]
    # Group-based overlays need an explicit session; tree overlays ignore it.
    source.macedon_create_group(GROUP)
    experiment.run(5.0)
    for node in experiment.nodes[1:]:
        node.macedon_join(GROUP)
    experiment.run(40.0)
    latencies = experiment.multicast_latency_probe(source, GROUP, packets=4)
    samples = stretch_samples(experiment.emulator, source.address, latencies)
    rdp = relative_delay_penalty(samples)
    latency_ms = mean(list(latencies.values())) * 1000
    stress = link_stress(experiment.emulator)["max"]
    return name, rdp, latency_ms, stress


def main() -> None:
    results = [
        evaluate("randtree", [randtree_agent()]),
        evaluate("overcast", [overcast_agent()]),
        evaluate("nice", [nice_agent()]),
        evaluate("scribe/pastry", scribe_stack(base="pastry")),
        evaluate("scribe/chord", scribe_stack(base="chord")),
    ]
    rows = [(name, f"{rdp:.2f}", f"{latency:.1f}", f"{stress:.0f}")
            for name, rdp, latency, stress in results]
    print(format_table(["overlay", "mean stretch (RDP)", "mean latency ms",
                        "max link stress"], rows,
                       title=f"Overlay comparison, {NUM_NODES} nodes, identical workload"))


if __name__ == "__main__":
    main()
