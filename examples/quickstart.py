#!/usr/bin/env python3
"""Quickstart: write a MACEDON specification, generate code, and run it.

This example does the whole MACEDON cycle in one file:

1. define a tiny overlay protocol (a heartbeat ring) in the mac DSL;
2. compile it to a Python agent class with the code generator;
3. run a handful of nodes over the emulated network;
4. print what happened.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.codegen import compile_mac
from repro.network import NetworkEmulator, transit_stub_topology
from repro.runtime import MacedonNode, Simulator, Tracer

HEARTBEAT_MAC = """
// A toy protocol: every node periodically pings the bootstrap, which counts
// the pings and acknowledges them.
protocol heartbeat
addressing ip
trace_med

constants { PERIOD = 2.0; }

states { running; }

transports { UDP BEST_EFFORT; }

messages {
    BEST_EFFORT ping { int count; }
    BEST_EFFORT ack { int count; }
}

state_variables {
    int pings_seen;
    int acks_seen;
    timer beat 2.0;
}

transitions {
    any API init {
        state_change("running")
        if not is_bootstrap:
            timer_sched(beat, PERIOD)
    }

    running timer beat {
        send_msg("ping", bootstrap_addr, count=acks_seen)
        timer_resched(beat, PERIOD)
    }

    running recv ping {
        pings_seen = pings_seen + 1
        send_msg("ack", source, count=field("count") + 1)
    }

    running recv ack {
        acks_seen = field("count")
    }
}
"""


def main() -> None:
    # 1-2. Parse, validate, and compile the specification into an agent class.
    HeartbeatAgent = compile_mac(HEARTBEAT_MAC, "heartbeat.mac")
    print(f"generated agent class: {HeartbeatAgent.__name__} "
          f"(protocol {HeartbeatAgent.PROTOCOL!r}, "
          f"{len(HeartbeatAgent.TRANSITIONS)} transitions)")

    # 3. Build an emulated network and run five nodes for a minute.
    simulator = Simulator(seed=7)
    topology = transit_stub_topology(5, seed=7)
    emulator = NetworkEmulator(simulator, topology)
    tracer = Tracer()
    nodes = [MacedonNode(simulator, emulator, [HeartbeatAgent], tracer=tracer)
             for _ in range(5)]
    bootstrap = nodes[0]
    for node in nodes:
        node.macedon_init(bootstrap.address)
    simulator.run(until=60.0)

    # 4. Inspect protocol state and runtime traces.
    print(f"simulated {simulator.now:.0f} s, "
          f"{emulator.stats.packets_delivered} packets delivered")
    print(f"bootstrap saw {bootstrap.lowest_agent.pings_seen} pings")
    for node in nodes[1:]:
        print(f"  node {node.address}: acks_seen={node.lowest_agent.acks_seen}")
    print(f"trace events by category: {dict(tracer.counts)}")


if __name__ == "__main__":
    main()
