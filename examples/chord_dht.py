#!/usr/bin/env python3
"""Run the bundled Chord specification and inspect the DHT it builds.

Demonstrates: loading a bundled protocol, building an overlay experiment,
measuring routing-table convergence (the Figure-10 metric), and routing
application data to the node that owns a key.

Run with:  python examples/chord_dht.py
"""

from __future__ import annotations

from repro.apps import AppPayload
from repro.eval import ExperimentConfig, OverlayExperiment, average_correct_route_entries
from repro.eval.reports import format_series
from repro.protocols import chord_agent

NUM_NODES = 40


def main() -> None:
    experiment = OverlayExperiment(
        [chord_agent()],
        ExperimentConfig(num_nodes=NUM_NODES, seed=11, convergence_time=60.0),
    )
    # Use a 1-second fix-fingers timer (the fast static setting of Figure 10).
    for node in experiment.nodes:
        node.agent("chord").fix_period = 1.0
    experiment.init_all(staggered=0.25)

    # Snapshot routing-table correctness every 2 simulated seconds while nodes join.
    series = experiment.sample_over_time(
        lambda: average_correct_route_entries(experiment.nodes, "chord"),
        interval=2.0, duration=60.0)
    print(format_series("Chord convergence (correct finger entries, max 32)",
                        series, x_label="time s", y_label="correct entries"))

    # Route data to the owner of an arbitrary key.
    target = experiment.nodes[7]
    delivered = []
    target.macedon_register_handlers(
        deliver=lambda payload, size, mtype: delivered.append((payload, size)))
    key = target.agent("chord").my_key
    sender = experiment.nodes[23]
    payload = AppPayload(seqno=0, sent_at=experiment.simulator.now,
                         source=sender.address)
    sender.macedon_route(key, payload, 1000)
    experiment.run(10.0)

    print(f"\nrouted 1000 bytes from node {sender.address} to the owner of "
          f"key {key:#010x}")
    print(f"owner {target.address} delivered: {delivered}")
    states = experiment.states()
    print(f"node states: {states}")


if __name__ == "__main__":
    main()
