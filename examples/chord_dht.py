#!/usr/bin/env python3
"""Run the bundled Chord specification and inspect the DHT it builds.

Demonstrates: loading a bundled protocol, describing the run as a
declarative :class:`ScenarioSpec` (staggered joins + a sampled convergence
series), and routing application data to the node that owns a key.

Run with:  python examples/chord_dht.py
"""

from __future__ import annotations

from repro.apps import AppPayload
from repro.eval import ChurnModel, SampleSeries, ScenarioSpec, average_correct_route_entries
from repro.eval.reports import format_series
from repro.protocols import chord_agent

NUM_NODES = 40


def main() -> None:
    # The whole experiment — population, join schedule, and the Figure-10
    # routing-table snapshot series — as one declarative spec.
    spec = ScenarioSpec(
        name="chord-convergence",
        agents=lambda: [chord_agent()],
        num_nodes=NUM_NODES,
        duration=60.0,
        seed=11,
        models=(ChurnModel(join="staggered", join_spacing=0.25),),
        samples=(SampleSeries(
            "correct_entries", 2.0,
            lambda exp: average_correct_route_entries(exp.nodes, "chord")),),
        # A 1-second fix-fingers timer (the fast static setting of Figure 10).
        configure=lambda exp: [setattr(node.agent("chord"), "fix_period", 1.0)
                               for node in exp.nodes],
    )
    result = spec.run()
    print(format_series("Chord convergence (correct finger entries, max 32)",
                        result.series["correct_entries"],
                        x_label="time s", y_label="correct entries"))

    # Route data to the owner of an arbitrary key on the converged overlay.
    experiment = result.experiment
    target = experiment.nodes[7]
    delivered = []
    target.macedon_register_handlers(
        deliver=lambda payload, size, mtype: delivered.append((payload, size)))
    key = target.agent("chord").my_key
    sender = experiment.nodes[23]
    payload = AppPayload(seqno=0, sent_at=experiment.simulator.now,
                         source=sender.address)
    sender.macedon_route(key, payload, 1000)
    experiment.run(10.0)

    print(f"\nrouted 1000 bytes from node {sender.address} to the owner of "
          f"key {key:#010x}")
    print(f"owner {target.address} delivered: {delivered}")
    print(f"node states: {experiment.states()}")


if __name__ == "__main__":
    main()
