#!/usr/bin/env python3
"""A full fault scenario: churn + a correlated crash + a healed partition.

Demonstrates the scenario subsystem end to end on the registry-compiled
Chord specification (specs/chord.mac): declarative fault models compiled
onto the simulator timeline, a measurement workload that keeps scoring lookups while the overlay repairs
itself, and the multi-seed runner that aggregates the results.

Run with:  python examples/churn_scenario.py
"""

from __future__ import annotations

from repro.eval import (
    ChurnModel,
    CrashModel,
    PartitionModel,
    SampleSeries,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadModel,
)
from repro.eval.reports import format_series
from repro.protocols import chord_agent
from repro.protocols.ring import ring_successor_correctness
from repro.runtime.failure import FailureDetectorConfig

SPEC = ScenarioSpec(
    name="chord-under-fire",
    agents=lambda: [chord_agent()],
    num_nodes=16,
    duration=240.0,
    # Aggressive f/g so repairs happen on a demo-friendly timescale.
    failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                         heartbeat_timeout=4.0,
                                         check_interval=1.0),
    models=(
        # Staggered joins, then 25% of the membership cycles out and back.
        ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.25,
                   churn_start=50.0, churn_end=180.0, downtime=15.0),
        # A correlated two-node crash with recovery half a minute later.
        CrashModel(at=90.0, victims=(5, 6), recover_after=30.0),
        # A clean half/half partition that heals after 20 seconds.
        PartitionModel(at=130.0, heal_after=20.0,
                       groups=(tuple(range(8)), tuple(range(8, 16)))),
        # Random-key lookups scored throughout.
        WorkloadModel(kind="route", source=-1, start=40.0, packets=120, gap=1.5),
    ),
    samples=(SampleSeries("succ_correctness", 10.0,
                          lambda exp: ring_successor_correctness(exp.nodes, "chord")),),
)


def main() -> None:
    # One seed in detail: the repair timeline.
    result = SPEC.run()
    print(format_series("chord successor correctness under faults",
                        result.series["succ_correctness"],
                        x_label="time s", y_label="fraction correct"))
    print("\nfault timeline:")
    for time, kind, detail in result.events:
        if kind != "route":
            print(f"  {time:7.1f}s  {kind:9s} {detail}")
    print(f"\nlookup success: {result.metrics['workload.success_ratio']:.3f} "
          f"({result.metrics['workload.sent']:.0f} probes, "
          f"{result.metrics['nodes.crashes']:.0f} crashes)")

    # Three seeds, aggregated.
    summary = ScenarioRunner(SPEC, seeds=[1, 2, 3]).run()
    success = summary.metric("workload.success_ratio")
    print(f"\nacross seeds {summary.seeds}: lookup success "
          f"{success.mean:.3f} ± {success.stddev:.3f} "
          f"(min {success.minimum:.3f}, max {success.maximum:.3f})")


if __name__ == "__main__":
    main()
