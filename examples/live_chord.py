#!/usr/bin/env python3
"""Deploy the bundled Chord specification over real sockets on localhost.

The same registry-compiled agent that examples/chord_dht.py runs in
simulation is booted here as 8 OS processes exchanging real UDP datagrams:
a staggered join wave builds the ring, each node then routes lookups for
random keys to their owners, and the harness aggregates per-process
observations into the same metric shapes the scenario runner reports.

Run with:  python examples/live_chord.py
"""

from __future__ import annotations

from repro.live import LiveCluster, LiveClusterConfig

NUM_NODES = 8


def main() -> None:
    config = LiveClusterConfig(
        nodes=NUM_NODES,
        protocol="chord",
        workload="route",
        duration=6.0,          # join wave + settle + lookup window, in wall s
        packets=5 * NUM_NODES,  # lookups, spread round-robin across nodes
        join_spacing=0.2,
        fix_period=0.5,        # fast fix-fingers, as in the Figure-10 demo
        base_port=47300,
    )
    print(f"booting {config.nodes} chord processes on "
          f"{config.host}:{config.base_port}-"
          f"{config.base_port + config.nodes - 1} …")
    outcome = LiveCluster(config).run()

    metrics = outcome.metrics
    print("\nper node (address / FSM state / lookups sent / delivered-here):")
    for report in outcome.per_node:
        print(f"  node {report['address']:>2}  {report['state']:<8} "
              f"sent={report['sent']:<3} delivered={report['delivered']:<3} "
              f"wire={report['socket']['bytes_sent']}B out")

    print(f"\nlookup success ratio : "
          f"{metrics['workload.success_ratio']:.3f} "
          f"({metrics['workload.deliveries']:.0f}/"
          f"{metrics['workload.sent']:.0f})")
    print(f"lookup latency       : mean "
          f"{metrics['workload.latency_mean'] * 1000:.2f} ms, p95 "
          f"{metrics['workload.latency_p95'] * 1000:.2f} ms (wall clock)")
    print(f"ring convergence     : "
          f"{metrics['ring.correct_successor_fraction']:.2f} "
          f"of successor pointers globally correct")
    print(f"transport traffic    : "
          f"{metrics['transport.messages_sent']:.0f} protocol messages, "
          f"{metrics['transport.retransmissions']:.0f} retransmissions")


if __name__ == "__main__":
    main()
