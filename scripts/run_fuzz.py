#!/usr/bin/env python
"""Fuzz the scenario engine: random adversarial specs, invariant-checked.

Generates seed-pinned random :class:`repro.eval.scenario.ScenarioSpec` values
from the bounded grammar in :mod:`repro.eval.fuzz`, runs each one, and
asserts the runtime invariants (:mod:`repro.eval.invariants`).  Violations
are shrunk to a minimal reproducing spec and written as JSON artifacts that
replay deterministically.

Usage::

    PYTHONPATH=src python scripts/run_fuzz.py --count 50 --seed 1
    PYTHONPATH=src python scripts/run_fuzz.py --replay artifacts/fuzz/fuzz-<seed>.json
    PYTHONPATH=src python scripts/run_fuzz.py --library   # curated specs only

Exit status is non-zero when any invariant is violated *or any case crashes
with an unhandled exception* (or, with --replay, when the artifact still
reproduces), so CI can gate on it directly — a crashed campaign can never
report success.  ``--jobs N`` runs cases across N forked worker processes.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.fuzz import (  # noqa: E402
    DEFAULT_CONFIG,
    FuzzConfig,
    fuzz,
    replay_artifact,
)
from repro.eval.invariants import check_invariants  # noqa: E402
from repro.eval.library import LIBRARY  # noqa: E402


def run_library(seed: int) -> int:
    """Run every curated library scenario once; report violations.

    A scenario that crashes is reported (with its traceback) and fails the
    run like a violation would — the remaining scenarios still execute.
    """
    status = 0
    for entry in LIBRARY:
        start = time.time()
        try:
            violations = check_invariants(entry.spec(seed=seed).run())
        except Exception:
            import traceback
            print(f"library {entry.name:24s} [{entry.protocol}] "
                  f"{time.time() - start:5.1f}s: CRASH")
            print(traceback.format_exc())
            status = 1
            continue
        verdict = "ok" if not violations else "VIOLATION"
        print(f"library {entry.name:24s} [{entry.protocol}] "
              f"{time.time() - start:5.1f}s: {verdict}")
        for violation in violations:
            print(f"    {violation}")
            status = 1
    return status


def run_replay(path: Path) -> int:
    violations = replay_artifact(path)
    if violations:
        print(f"artifact {path} reproduces {len(violations)} violation(s):")
        for violation in violations:
            print(f"    {violation}")
        return 1
    print(f"artifact {path} no longer reproduces (invariants hold)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=50,
                        help="number of generated scenarios (default 50)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed; case seeds derive from it")
    parser.add_argument("--protocols", type=str, default=None,
                        help="comma-separated protocol subset "
                             f"(default {','.join(DEFAULT_CONFIG.protocols)})")
    parser.add_argument("--artifact-dir", type=Path,
                        default=REPO_ROOT / "artifacts" / "fuzz",
                        help="where shrunk repro artifacts are written")
    parser.add_argument("--replay", type=Path, default=None,
                        help="replay one artifact instead of fuzzing")
    parser.add_argument("--library", action="store_true",
                        help="run the curated scenario library instead of "
                             "generated specs")
    parser.add_argument("--jobs", type=int, default=1,
                        help="forked worker processes running cases in "
                             "parallel (cases are independent; default 1)")
    args = parser.parse_args()
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.replay is not None:
        return run_replay(args.replay)
    if args.library:
        return run_library(args.seed)

    config = DEFAULT_CONFIG
    if args.protocols:
        config = FuzzConfig(
            protocols=tuple(name.strip()
                            for name in args.protocols.split(",")))
    start = time.time()
    report = fuzz(args.count, args.seed, config=config,
                  artifact_dir=args.artifact_dir, jobs=args.jobs, log=print)
    elapsed = time.time() - start
    crashes = sum(1 for failure in report.failures
                  if failure.error is not None)
    print(f"\n{report.cases} cases in {elapsed:.1f}s: "
          f"{len(report.failures) - crashes} invariant violation(s), "
          f"{crashes} crash(es)")
    for failure in report.failures:
        if failure.error is not None:
            print(f"  seed={failure.case_seed} CRASH -> {failure.artifact}")
            continue
        names = sorted({v.invariant for v in failure.violations})
        print(f"  seed={failure.case_seed} {names} -> {failure.artifact}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
