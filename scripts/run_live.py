#!/usr/bin/env python
"""Boot a live localhost deployment of a registry-compiled protocol.

The live half of the paper's evaluation story: the same ``.mac``-generated
agents that run in simulation are booted as N OS processes exchanging real
UDP datagrams (see docs/LIVE.md), driven through a staggered join wave and a
route, multicast, replicated-KV, or pub/sub workload, and scored with the
same metric shapes the scenario runner reports.

``--kill INDEX:AT[:RESPAWN_AFTER]`` injects real faults: the coordinator
SIGKILLs node INDEX's process AT seconds after the cluster clock zero and
(with RESPAWN_AFTER) respawns it under the supervisor's restart-epoch
machinery.  ``--min-post-fault-success`` then gates on the ratio for probes
sent after the last fault plus the settle window — the "kill a node
mid-run, recover, still route" check CI runs.

Usage::

    PYTHONPATH=src python scripts/run_live.py --nodes 8 --duration 5
    PYTHONPATH=src python scripts/run_live.py --nodes 8 --duration 12 \
        --kill 3:5.0:1.0 --min-post-fault-success 0.9

Prints one JSON document (aggregate metrics plus per-node summaries) and
exits non-zero if the workload success ratio lands below ``--min-success``,
the post-fault ratio below ``--min-post-fault-success``, any live invariant
is violated, or any node's driver swallowed callback exceptions — which is
how CI's live smoke jobs gate deployability without touching the benchmark
history (this script never writes BENCH_core.json).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.live import (KillNode, LiveCluster, LiveClusterConfig,  # noqa: E402
                        LiveClusterError)


def parse_kill(text: str) -> KillNode:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"--kill wants INDEX:AT[:RESPAWN_AFTER], got {text!r}")
    try:
        index = int(parts[0])
        at = float(parts[1])
        respawn = float(parts[2]) if len(parts) == 3 else None
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--kill wants numbers in INDEX:AT[:RESPAWN_AFTER], "
            f"got {text!r}") from exc
    return KillNode(at=at, index=index, respawn_after=respawn)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                     allow_abbrev=False)
    parser.add_argument("--nodes", type=int, default=8,
                        help="number of node processes (default 8)")
    parser.add_argument("--protocol", default="chord",
                        help="registry protocol to deploy (default chord)")
    parser.add_argument("--workload",
                        choices=("route", "multicast", "kv", "pubsub"),
                        default="route",
                        help="measurement workload (default route)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="measurement horizon in wall seconds; the join "
                             "wave, settle, and workload all fit inside it "
                             "(default 10)")
    parser.add_argument("--packets", type=int, default=None,
                        help="total workload packets "
                             "(default: 8 per node for route, 16 multicast)")
    parser.add_argument("--payload-size", type=int, default=1000,
                        help="declared payload bytes per packet (default 1000)")
    parser.add_argument("--join-spacing", type=float, default=0.15,
                        help="seconds between successive joins (default 0.15)")
    parser.add_argument("--settle", type=float, default=1.0,
                        help="seconds between the last join and the first "
                             "workload packet (default 1.0)")
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for per-node RNG streams (default 1)")
    parser.add_argument("--base-port", type=int, default=47000,
                        help="first UDP port; node i binds base+i "
                             "(default 47000)")
    parser.add_argument("--fix-period", type=float, default=0.5,
                        help="chord fix-fingers period in seconds; 0 keeps "
                             "the specification default (default 0.5)")
    parser.add_argument("--startup-timeout", type=float, default=60.0,
                        help="seconds each process gets to import, compile, "
                             "and reach the start barrier (default 60)")
    parser.add_argument("--kill", type=parse_kill, action="append",
                        default=[], metavar="INDEX:AT[:RESPAWN_AFTER]",
                        help="SIGKILL node INDEX at AT seconds; with "
                             "RESPAWN_AFTER, the supervisor respawns it "
                             "that many seconds later (repeatable)")
    parser.add_argument("--restart-budget", type=int, default=3,
                        help="supervised respawns per node before it is "
                             "accounted down (default 3)")
    parser.add_argument("--post-fault-settle", type=float, default=2.0,
                        help="recovery window after the last fault before "
                             "probes count toward the post-fault ratio "
                             "(default 2.0)")
    parser.add_argument("--kv-keys", type=int, default=64,
                        help="kv: working-set size (default 64)")
    parser.add_argument("--kv-read-fraction", type=float, default=0.7,
                        help="kv: fraction of ops that are reads (default 0.7)")
    parser.add_argument("--kv-replicas", type=int, default=3,
                        help="kv: replication factor N (default 3)")
    parser.add_argument("--kv-write-quorum", type=int, default=2,
                        help="kv: acks to complete a put (default 2)")
    parser.add_argument("--kv-read-quorum", type=int, default=2,
                        help="kv: replies to complete a get (default 2)")
    parser.add_argument("--topics", type=int, default=4,
                        help="pubsub: topic count; every node subscribes to "
                             "every topic (default 4)")
    parser.add_argument("--min-success", type=float, default=None,
                        help="exit 1 if workload success ratio is below this")
    parser.add_argument("--min-post-fault-success", type=float, default=None,
                        help="exit 1 if the post-fault success ratio is "
                             "below this (requires --kill or other faults)")
    parser.add_argument("--per-node", action="store_true",
                        help="include full per-node reports in the output")
    args = parser.parse_args(argv)

    packets = args.packets
    if packets is None:
        packets = (8 * args.nodes if args.workload in ("route", "kv")
                   else 16)
    config = LiveClusterConfig(
        nodes=args.nodes,
        protocol=args.protocol,
        workload=args.workload,
        duration=args.duration,
        packets=packets,
        payload_size=args.payload_size,
        join_spacing=args.join_spacing,
        settle=args.settle,
        seed=args.seed,
        base_port=args.base_port,
        fix_period=args.fix_period or None,
        startup_timeout=args.startup_timeout,
        faults=tuple(sorted(args.kill, key=lambda fault: fault.at)),
        restart_budget=args.restart_budget,
        post_fault_settle=args.post_fault_settle,
        kv_keys=args.kv_keys,
        kv_read_fraction=args.kv_read_fraction,
        kv_replicas=args.kv_replicas,
        kv_write_quorum=args.kv_write_quorum,
        kv_read_quorum=args.kv_read_quorum,
        topics=args.topics,
    )
    try:
        outcome = LiveCluster(config).run()
    except LiveClusterError as exc:
        # Startup diagnostics, driver callback errors, dead workers: the
        # message already names the culprit — no traceback needed.
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1

    from repro.eval.invariants import check_live_invariants
    violations = check_live_invariants(outcome)

    document = {
        "name": outcome.result.name,
        "nodes": args.nodes,
        "duration": args.duration,
        "packets": packets,
        "kills": [[fault.index, fault.at, fault.respawn_after]
                  for fault in config.faults],
        "metrics": outcome.metrics,
        "invariant_violations": [str(violation) for violation in violations],
    }
    if args.per_node:
        document["per_node"] = outcome.per_node
    else:
        document["per_node"] = [
            {key: report.get(key) for key in
             ("address", "state", "incarnation", "sent", "delivered")}
            for report in outcome.per_node
        ]
    print(json.dumps(document, indent=2))

    failed = False
    for violation in violations:
        print(f"FAILED: invariant {violation}", file=sys.stderr)
        failed = True
    if args.min_success is not None:
        success = outcome.metrics["workload.success_ratio"]
        if success < args.min_success:
            print(f"FAILED: workload success ratio {success:.3f} < "
                  f"required {args.min_success}", file=sys.stderr)
            failed = True
        else:
            print(f"OK: workload success ratio {success:.3f} >= "
                  f"{args.min_success}", file=sys.stderr)
    if args.min_post_fault_success is not None:
        post = outcome.metrics.get("workload.post_fault_success_ratio")
        if post is None:
            print("FAILED: no post-fault probes were sent (no faults, or "
                  "the fault horizon leaves no workload after the settle "
                  "window — lengthen --duration or kill earlier)",
                  file=sys.stderr)
            failed = True
        elif post < args.min_post_fault_success:
            print(f"FAILED: post-fault success ratio {post:.3f} < "
                  f"required {args.min_post_fault_success}", file=sys.stderr)
            failed = True
        else:
            print(f"OK: post-fault success ratio {post:.3f} >= "
                  f"{args.min_post_fault_success}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
