#!/usr/bin/env python
"""CI obs-smoke: run a small traced scenario, validate every artifact.

Runs an 8-node Chord spec with full observability attached (trace export,
causal message tracing, metrics snapshot), then checks the whole artifact
chain end to end:

* the ``repro.obs/1`` snapshot file round-trips and passes schema
  validation, and its counters agree with the run;
* the ``repro.trace/1`` JSONL stream loads, and causal ``route_hop``
  records reconstruct into route paths with hop counts and per-hop
  latencies;
* running the *same* spec without observability produces byte-identical
  metrics — the disabled path must not perturb the simulation.

Artifacts land in ``--out-dir`` so the CI job can upload them; exits
non-zero on any check failure.

Usage::

    PYTHONPATH=src python scripts/run_obs_smoke.py --out-dir obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.library import resolve_protocol            # noqa: E402
from repro.eval.scenario import (ChurnModel, ScenarioSpec,  # noqa: E402
                                 WorkloadModel)
from repro.obs import (ObsConfig, load_obs_snapshot,       # noqa: E402
                       load_trace, reconstruct_routes)


def build_spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="obs-smoke", agents=resolve_protocol("chord"),
        num_nodes=8, duration=40.0, seed=seed,
        models=(ChurnModel(join="staggered", join_spacing=0.5),
                WorkloadModel(kind="route", source=-1, start=10.0,
                              packets=24, gap=1.0)))


def main() -> int:
    parser = argparse.ArgumentParser(description="Observability smoke test")
    parser.add_argument("--out-dir", default="obs-artifacts",
                        help="directory the artifacts are written into")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "trace.jsonl"
    snapshot_path = out_dir / "obs.json"

    failures: list[str] = []

    def check(ok: bool, label: str) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    spec = build_spec(args.seed)
    print("running baseline (obs off) ...")
    baseline = spec.run()

    print("running traced (obs on) ...")
    traced_spec = replace(spec, obs=ObsConfig(
        trace_path=str(trace_path), causal=True,
        snapshot_path=str(snapshot_path)))
    traced = traced_spec.run()

    check(traced.metrics == baseline.metrics,
          "obs-on metrics byte-identical to obs-off")
    check(traced.obs is not None, "result carries an obs snapshot")

    # Snapshot file: schema-validated on load.
    snapshot = load_obs_snapshot(str(snapshot_path))
    check(snapshot["schema"] == "repro.obs/1", "snapshot schema")
    check(snapshot["mode"] == "sim", "snapshot mode")
    counters = snapshot["counters"]
    check(counters["workload.sent"] == 24, "workload.sent counter")
    check(counters["net.packets_sent"] > 0, "net.packets_sent counter")
    check(counters["causal.traces"] > 0, "causal traces recorded")
    check(counters["trace.records"] > 0, "trace records counted")

    # Trace stream: loads, and causal records reconstruct into routes.
    header, records = load_trace(str(trace_path))
    check(header["schema"] == "repro.trace/1", "trace schema")
    check(len(records) > 0, "trace records written")
    routes = reconstruct_routes(records)
    check(len(routes) > 0, "route paths reconstructed")
    check(all(route["hops"] >= 1 and len(route["path"]) == route["hops"] + 1
              for route in routes), "route path lengths consistent")
    check(all(len(route["latencies"]) == route["hops"] for route in routes),
          "per-hop latencies present")
    hop_histogram = snapshot["histograms"]["causal.route_hops"]
    check(hop_histogram["count"] == len(routes),
          "route-hop histogram count matches reconstructed routes")

    summary = {
        "records": len(records),
        "routes": len(routes),
        "max_hops": max(route["hops"] for route in routes) if routes else 0,
        "counters": {name: value for name, value in counters.items() if value},
        "failures": failures,
    }
    (out_dir / "summary.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(summary, indent=2))
    if failures:
        print(f"obs smoke FAILED ({len(failures)} check(s))",
              file=sys.stderr)
        return 1
    print("obs smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
