#!/usr/bin/env python
"""Run the simulation-core microbenchmarks and record results in BENCH_core.json.

Four workloads are measured:

* **kernel** — events/second through :class:`repro.runtime.engine.Simulator`,
  both the handle-returning ``schedule()`` path and (when available) the
  fire-and-forget ``schedule_fast()`` path;
* **emulator** — packets/second through a ~600-node transit-stub
  :class:`repro.network.emulator.NetworkEmulator`, i.e. the full
  ``send() -> per-link transit -> deliver`` pipeline that every figure
  reproduction funnels through;
* **scenario_churn** — a full churn scenario (registry-compiled Chord from
  ``specs/chord.mac``, 10% membership cycling, route-probe workload)
  executed by the scenario engine across three seeds, so churn-path
  performance (crash/recover, targeted route invalidation, failure
  detection) is tracked alongside the kernel and emulator numbers;
* **scale** — the hundreds-of-nodes experiments: 200 registry-compiled
  Chord nodes under a route-probe workload and 200 Scribe-over-Pastry
  nodes multicasting to one group, recording wall-clock, events/s, and
  per-seed-stable fidelity metrics at ModelNet-like population sizes;
* **app** — the application layer over the overlays: a Zipf-skewed
  replicated-KV workload (3-way replication, W=2/Q=2 quorums) on 200
  registry-compiled Chord nodes and topic pub/sub over Scribe-over-Pastry,
  both executed through the ``repro.run`` facade; quorum success, phantom
  reads, replica coverage, and pub/sub coverage are per-seed-stable
  fidelity metrics;
* **adversarial** — two curated library scenarios
  (``repro/eval/library.py``): a Chord flash crowd and Scribe-over-Pastry
  multicast through a flapping directed partition, run under runtime
  invariant checking, so the stressed fault paths (burst joins, directed
  cuts, fault-branch routing) are performance-tracked and their fidelity
  metrics pinned per seed;
* **shard** — the multi-process sharded kernel
  (:mod:`repro.runtime.sharded`): a 1,000-node Chord overlay and a
  Scribe-over-Pastry multicast run single-process and at ``shards`` in
  {1, 4, 8}, recording aggregate events/s, speedup, barrier counts, and —
  the machine-independent property — whether ``shards=1`` reproduced the
  single-process metrics byte-identically and ``shards=K`` matched across
  K.  Speedup needs >= K idle cores; the determinism booleans do not.

Every entry also records **host provenance** (CPU model, core count,
1-minute load average, Python version), so an entry whose absolute rates
sank from a noisy or smaller runner is auditable instead of mysterious.
Any unhandled exception out of a benchmark (including a forked shard
worker's, which re-raises here) aborts with a non-zero exit status — a
crashed run can never record or green-wash an entry.

A deterministic *fingerprint* workload (fixed seed, fixed traffic schedule)
is also run; its delivery/latency metrics must be byte-identical across
refactors of the core, which is how perf PRs prove they did not change
simulation semantics.  The scenario entry records its own fixed-seed
metrics (lookup success per seed) for the same purpose.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py --label "my change"

Each invocation appends one timestamped entry to ``BENCH_core.json`` (see
docs/PERFORMANCE.md for the schema).  Pass ``--output -`` to print the entry
without touching the file, ``--quick`` for a fast smoke run that still
appends, ``--smoke`` for the CI form (quick sizes, stdout only), and
``--check`` to compare kernel events/s, emulator packets/s, scenario_churn
events/s, and the scale benches' events/s against the last recorded entry
and exit non-zero on a >30% regression.
"""

from __future__ import annotations

import argparse
import configparser
import json
import platform
import random
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.runner import ScenarioRunner  # noqa: E402
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel  # noqa: E402
from repro.network.emulator import NetworkEmulator  # noqa: E402
from repro.network.packet import Packet  # noqa: E402
from repro.network.topology import transit_stub_topology  # noqa: E402
from repro.protocols import chord_agent  # noqa: E402
from repro.runtime.engine import Simulator  # noqa: E402
from repro.runtime.failure import FailureDetectorConfig  # noqa: E402
from repro.runtime.sharded.mailbox import host_provenance  # noqa: E402

SCHEMA_VERSION = 1

#: --check fails when a measured rate drops more than this below the last
#: recorded entry (CI smoke boxes are noisy; 30% catches real regressions).
CHECK_REGRESSION_TOLERANCE = 0.30

#: Defaults, overridable by the ``[repro:bench]`` section of setup.cfg and
#: then by command-line flags.
BENCH_DEFAULTS = {
    "kernel_events": 200_000,
    "emulator_hosts": 600,
    "emulator_packets": 100_000,
    "neighbors_per_host": 8,
    "scenario_nodes": 20,
    "scenario_duration": 240,
    "scale_nodes": 200,
    "scale_duration": 180,
    "scale_scribe_nodes": 200,
    "shard_nodes": 1000,
    "shard_duration": 60,
    "shard_scribe_nodes": 150,
    "shard_scribe_duration": 90,
    "app_kv_nodes": 200,
    "app_kv_duration": 180,
    "app_pubsub_nodes": 100,
    "app_pubsub_duration": 150,
    "results_file": "BENCH_core.json",
}


def load_bench_config() -> dict:
    """Benchmark defaults merged with the [repro:bench] section of setup.cfg."""
    config = dict(BENCH_DEFAULTS)
    parser = configparser.ConfigParser()
    parser.read(REPO_ROOT / "setup.cfg")
    if parser.has_section("repro:bench"):
        section = parser["repro:bench"]
        for key in ("kernel_events", "emulator_hosts", "emulator_packets",
                    "neighbors_per_host", "scenario_nodes",
                    "scenario_duration", "scale_nodes", "scale_duration",
                    "scale_scribe_nodes", "shard_nodes", "shard_duration",
                    "shard_scribe_nodes", "shard_scribe_duration",
                    "app_kv_nodes", "app_kv_duration", "app_pubsub_nodes",
                    "app_pubsub_duration"):
            if key in section:
                config[key] = section.getint(key)
        if "results_file" in section:
            config["results_file"] = section["results_file"]
    return config


# --------------------------------------------------------------------- kernel
def bench_kernel(num_events: int = 200_000) -> dict:
    """Events/second through the discrete-event kernel.

    Schedules *num_events* no-op callbacks at pseudo-random offsets and drains
    the queue.  Measured twice: once through ``schedule()`` (handle per event)
    and once through ``schedule_fast()`` when the kernel provides it.
    """
    rng = random.Random(12345)
    delays = [rng.random() * 100.0 for _ in range(num_events)]

    def noop() -> None:
        pass

    def timed(schedule_one) -> float:
        simulator = Simulator(seed=1)
        sched = schedule_one(simulator)
        start = time.perf_counter()
        for delay in delays:
            sched(delay, noop)
        simulator.run()
        return time.perf_counter() - start

    handle_seconds = timed(lambda sim: sim.schedule)
    fast = getattr(Simulator, "schedule_fast", None)
    fast_seconds = timed(lambda sim: sim.schedule_fast) if fast else handle_seconds
    return {
        "events": num_events,
        "seconds": round(fast_seconds, 6),
        "events_per_sec": round(num_events / fast_seconds),
        "handle_seconds": round(handle_seconds, 6),
        "events_with_handles_per_sec": round(num_events / handle_seconds),
        "has_schedule_fast": fast is not None,
    }


# ------------------------------------------------------------------- emulator
def bench_emulator(num_hosts: int = 600, num_packets: int = 100_000,
                   neighbors_per_host: int = 8) -> dict:
    """Packets/second through a transit-stub emulator at ~ModelNet scale.

    Hosts are attached to a *num_hosts*-client transit-stub topology; each
    host is given *neighbors_per_host* fixed pseudo-random overlay neighbours
    and a *num_packets* traffic matrix cycles over those (src, neighbour)
    pairs — the steady-state regime of every figure reproduction, where the
    same overlay edges carry packet after packet.  The measured phase covers
    ``send()`` (routing, the per-link queue walk) plus event dispatch and
    delivery.
    """
    simulator = Simulator(seed=2)
    topology = transit_stub_topology(num_hosts, seed=2)
    emulator = NetworkEmulator(simulator, topology)

    attach_start = time.perf_counter()
    addresses = [emulator.attach_host().address for _ in range(num_hosts)]
    attach_seconds = time.perf_counter() - attach_start

    rng = random.Random(99)
    neighbors = []
    for src in range(num_hosts):
        chosen = rng.sample([h for h in range(num_hosts) if h != src],
                            neighbors_per_host)
        neighbors.append(chosen)
    pairs = []
    for index in range(num_packets):
        src = index % num_hosts
        dst = neighbors[src][(index // num_hosts) % neighbors_per_host]
        pairs.append((addresses[src], addresses[dst]))

    delivered = 0

    def on_receive(packet: Packet) -> None:
        nonlocal delivered
        delivered += 1

    for address in addresses:
        emulator.set_receive_callback(address, on_receive)

    # Spread injections over simulated time so link queues drain between
    # bursts; 20 packets share each injection instant.
    def inject(offset: int) -> None:
        send = emulator.send
        for src, dst in pairs[offset:offset + 20]:
            send(Packet(src, dst, None, 200))

    start = time.perf_counter()
    for offset in range(0, num_packets, 20):
        simulator.schedule((offset // 20) * 0.001, inject, offset)
    simulator.run()
    seconds = time.perf_counter() - start
    return {
        "hosts": num_hosts,
        "packets": num_packets,
        "neighbors": neighbors_per_host,
        "seconds": round(seconds, 6),
        "packets_per_sec": round(num_packets / seconds),
        "delivered": delivered,
        "dropped": emulator.stats.packets_dropped,
        "attach_seconds": round(attach_seconds, 6),
    }


# ------------------------------------------------------------ scenario churn
def bench_scenario_churn(num_nodes: int = 20, duration: float = 240.0,
                         seeds: tuple[int, ...] = (1, 2, 3)) -> dict:
    """Wall-clock and fidelity of the scenario engine's churn path.

    One declarative churn scenario (staggered join, 10% of the membership
    fail-stopping and rejoining, random-key route probes) executed across
    *seeds* by :class:`ScenarioRunner`, on the registry-compiled Chord
    specification.  ``seconds``/``events_per_sec`` track performance; the
    per-seed ``success_ratios`` are pure simulation results and must be
    byte-stable across refactors, like the core fingerprint.
    """
    spec = ScenarioSpec(
        name="bench-chord-churn",
        agents=lambda: [chord_agent()],
        num_nodes=num_nodes,
        duration=duration,
        failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                             heartbeat_timeout=4.0,
                                             check_interval=1.0),
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.10,
                       churn_start=duration * 0.25, churn_end=duration * 0.85,
                       downtime=15.0),
            WorkloadModel(kind="route", source=-1, start=duration * 0.15,
                          packets=int(duration // 2), gap=1.5),
        ),
    )
    start = time.perf_counter()
    summary = ScenarioRunner(spec, seeds=list(seeds)).run()
    seconds = time.perf_counter() - start
    events = sum(result.metrics["sim.events_processed"]
                 for result in summary.results)
    success = summary.metric("workload.success_ratio")
    return {
        "nodes": num_nodes,
        "duration": duration,
        "seeds": list(seeds),
        "seconds": round(seconds, 6),
        "events_processed": int(events),
        "events_per_sec": round(events / seconds),
        "sim_seconds_per_wall_second": round(len(seeds) * duration / seconds, 1),
        "success_ratios": [repr(result.metrics["workload.success_ratio"])
                           for result in summary.results],
        "success_mean": round(success.mean, 4),
        "success_stddev": round(success.stddev, 4),
        "crashes": int(sum(result.metrics["nodes.crashes"]
                           for result in summary.results)),
    }


# -------------------------------------------------------------------- scale
def bench_scale(num_nodes: int = 200, duration: float = 180.0,
                scribe_nodes: int = 200, seed: int = 1) -> dict:
    """Registry-compiled protocols at hundreds of nodes (the ROADMAP's scale
    experiment): wall-clock and events/s, with per-seed-stable fidelity
    metrics.

    Two workloads:

    * **chord** — *num_nodes* registry-compiled Chord nodes joining under a
      staggered schedule with a random-key route-probe workload over the last
      quarter of *duration*.  The recorded ``success_ratio`` documents what
      the bundled spec actually achieves at this scale (ring convergence is
      slow at hundreds of nodes — see ROADMAP open items); it must be
      byte-stable per seed like every other fidelity metric.
    * **scribe** — *scribe_nodes* Scribe-over-Pastry nodes building one group
      and multicasting a short burst.  Pastry's announce/gossip full-
      membership anti-entropy makes this the expensive half (O(members) work
      per gossip message); its events/s quantifies that known open item.
    """
    from repro.eval.experiment import ExperimentConfig, OverlayExperiment
    from repro.eval.scenario import WorkloadModel
    from repro.protocols import scribe_stack

    failure_config = FailureDetectorConfig(failure_timeout=10.0,
                                           heartbeat_timeout=4.0,
                                           check_interval=1.0)

    # --- Chord route probes at scale -----------------------------------
    join_spacing = (duration * 0.3) / num_nodes
    probe_gap = 0.25
    probes = int(duration * 0.2 / probe_gap)
    spec = ScenarioSpec(
        name="bench-scale-chord",
        agents=lambda: [chord_agent()],
        num_nodes=num_nodes,
        duration=duration,
        failure_config=failure_config,
        models=(
            ChurnModel(join="staggered", join_spacing=join_spacing,
                       churn_fraction=0.0),
            WorkloadModel(kind="route", source=-1, start=duration * 0.75,
                          packets=probes, gap=probe_gap),
        ),
    )
    start = time.perf_counter()
    result = spec.with_seed(seed).run()
    chord_seconds = time.perf_counter() - start
    chord_events = result.metrics["sim.events_processed"]
    chord = {
        "nodes": num_nodes,
        "duration": duration,
        "seed": seed,
        "seconds": round(chord_seconds, 6),
        "events_processed": int(chord_events),
        "events_per_sec": round(chord_events / chord_seconds),
        "probes": probes,
        "success_ratio": repr(result.metrics["workload.success_ratio"]),
    }

    # --- Scribe-over-Pastry multicast at scale -------------------------
    # Phase lengths scale with the population; the join wave is the
    # dominant cost (gossip anti-entropy), so it is kept tight.
    spacing = 0.1 if scribe_nodes >= 150 else 0.05
    group = 4040
    packets, gap = 5, 0.5
    start = time.perf_counter()
    experiment = OverlayExperiment(scribe_stack(), ExperimentConfig(
        num_nodes=scribe_nodes, seed=seed,
        convergence_time=scribe_nodes * spacing + 120.0,
        failure_config=failure_config))
    experiment.init_all(staggered=spacing)
    experiment.run(scribe_nodes * spacing + 10.0)   # join wave + settle
    source = experiment.nodes[1]
    source.macedon_create_group(group)
    experiment.run(5.0)
    for node in experiment.nodes:
        if node is not source:
            node.macedon_join(group)
    experiment.run(20.0)
    compiled = experiment.apply_model(
        WorkloadModel(kind="multicast", source=1, group=group,
                      packets=packets, gap=gap))
    experiment.run(packets * gap + 15.0)
    compiled.restore()
    metrics = compiled.metrics()
    scribe_seconds = time.perf_counter() - start
    scribe_events = experiment.simulator.events_processed
    scribe = {
        "nodes": scribe_nodes,
        "sim_seconds": round(experiment.simulator.now, 6),
        "seed": seed,
        "seconds": round(scribe_seconds, 6),
        "events_processed": int(scribe_events),
        "events_per_sec": round(scribe_events / scribe_seconds),
        "packets": packets,
        "deliveries": int(metrics["deliveries"]),
        "success_ratio": repr(metrics["success_ratio"]),
    }
    return {"chord": chord, "scribe": scribe}


# -------------------------------------------------------------------- shard
def bench_shard(num_nodes: int = 1000, duration: float = 60.0,
                scribe_nodes: int = 150, scribe_duration: float = 90.0,
                shard_counts: tuple[int, ...] = (1, 4, 8),
                seed: int = 1) -> dict:
    """The multi-process sharded kernel at scale (docs/PERFORMANCE.md,
    "Sharded execution").

    Two workloads — *num_nodes* registry-compiled Chord under route probes,
    and a *scribe_nodes* Scribe-over-Pastry group multicast — each run once
    single-process and once per shard count in *shard_counts* via
    :meth:`ScenarioSpec.run_sharded`.  Per run: wall-clock, aggregate
    events/s across the shard workers, and the speedup of that aggregate
    rate over the single-process run.

    Speedup is machine-dependent: it needs at least as many idle cores as
    shards (a 1-core host serialises the workers and the barrier protocol is
    pure overhead — see the recorded host provenance).  The *determinism*
    booleans are not: ``shard1_identical`` asserts that ``shards=1``
    reproduced the single-process metrics byte-identically, and each K > 1
    run records whether its metrics matched the other shard counts
    (``identical_across_counts``); ``--check`` gates on ``shard1_identical``
    regardless of machine.
    """
    from repro.eval.scenario import GroupModel
    from repro.protocols import scribe_stack

    failure_config = FailureDetectorConfig(failure_timeout=10.0,
                                           heartbeat_timeout=4.0,
                                           check_interval=1.0)

    # Same shape as the scale bench's Chord workload: staggered joins over
    # the first 30% of the run, route probes over the last quarter.
    probe_gap = 0.25
    chord_spec = ScenarioSpec(
        name="bench-shard-chord",
        agents=lambda: [chord_agent()],
        num_nodes=num_nodes,
        duration=duration,
        failure_config=failure_config,
        models=(
            ChurnModel(join="staggered",
                       join_spacing=(duration * 0.3) / num_nodes,
                       churn_fraction=0.0),
            WorkloadModel(kind="route", source=-1, start=duration * 0.75,
                          packets=int(duration * 0.2 / probe_gap),
                          gap=probe_gap),
        ))

    # Scribe-over-Pastry: join wave, then every node joins one group, then a
    # short multicast burst near the end.  Phase fractions keep the schedule
    # valid at smoke sizes too.
    group = 7
    scribe_spec = ScenarioSpec(
        name="bench-shard-scribe",
        agents=lambda: scribe_stack("pastry"),
        num_nodes=scribe_nodes,
        duration=scribe_duration,
        failure_config=failure_config,
        models=(
            ChurnModel(join="staggered",
                       join_spacing=min(0.15,
                                        scribe_duration * 0.25 / scribe_nodes),
                       churn_fraction=0.0),
            GroupModel(group=group, source=0, at=scribe_duration * 0.39,
                       spacing=min(0.25,
                                   scribe_duration * 0.42 / scribe_nodes)),
            WorkloadModel(kind="multicast", source=0, group=group,
                          start=scribe_duration * 0.87,
                          packets=max(4, int(scribe_duration * 0.09)),
                          gap=1.0),
        ))

    def fingerprint(result) -> dict:
        return {key: repr(value)
                for key, value in sorted(result.metrics.items())}

    def measure(spec: ScenarioSpec) -> dict:
        seeded = spec.with_seed(seed)
        start = time.perf_counter()
        single = seeded.run()
        single_seconds = time.perf_counter() - start
        single_events = single.metrics["sim.events_processed"]
        single_rate = single_events / single_seconds
        single_fp = fingerprint(single)

        runs = []
        shard1_identical = None
        multi_fp = None
        for count in shard_counts:
            start = time.perf_counter()
            sharded = seeded.run_sharded(count)
            seconds = time.perf_counter() - start
            events = sharded.metrics["sim.events_processed"]
            fp = fingerprint(sharded)
            info = sharded.shard_info
            lookahead = info["lookahead"]
            run = {
                "shards": count,
                "effective_shards": info["num_shards"],
                # A one-shard plan has no cross-shard pair, so its window is
                # unbounded; record null rather than emit non-JSON Infinity.
                "lookahead": lookahead if lookahead != float("inf") else None,
                "barriers": info["barriers"],
                "cross_shard_packets": info["cross_shard_packets"],
                "seconds": round(seconds, 6),
                "events_processed": int(events),
                "events_per_sec": round(events / seconds),
                "speedup_vs_single": round((events / seconds) / single_rate,
                                           3),
            }
            if info["num_shards"] == 1:
                shard1_identical = fp == single_fp
                run["identical_to_single_process"] = shard1_identical
            else:
                if multi_fp is None:
                    multi_fp = fp
                run["identical_across_counts"] = fp == multi_fp
            runs.append(run)
        return {
            "nodes": spec.num_nodes,
            "duration": spec.duration,
            "seed": seed,
            "single": {
                "seconds": round(single_seconds, 6),
                "events_processed": int(single_events),
                "events_per_sec": round(single_rate),
            },
            "runs": runs,
            "shard1_identical": bool(shard1_identical),
        }

    return {
        "shard_counts": list(shard_counts),
        "chord": measure(chord_spec),
        "scribe": measure(scribe_spec),
    }


# ---------------------------------------------------------------------- app
def bench_app(kv_nodes: int = 200, kv_duration: float = 180.0,
              pubsub_nodes: int = 100, pubsub_duration: float = 150.0,
              seed: int = 1) -> dict:
    """The application layer over the overlays (``repro.apps``).

    Two workloads, both executed via the ``repro.run`` facade so the bench
    also exercises the unified front door:

    * **kv** — a Zipf-skewed replicated key/value workload (3-way
      replication, W=2/Q=2 quorums, 70% reads) over *kv_nodes*
      registry-compiled Chord nodes.  ``quorum_success``/``phantom_reads``/
      ``replica_coverage`` are fixed-seed fidelity metrics and must stay
      byte-stable across refactors, like the core fingerprint.  At 200
      nodes quorum success is convergence-limited (~0.57), the same gap
      the scale bench records as route success 0.618 — a quorum op needs
      several successful routes over the partially-converged ring
      (ROADMAP: protocol fidelity at scale), not an application bug;
    * **pubsub** — topic pub/sub over Scribe-over-Pastry: 4 topics, every
      node subscribed, a publication burst from the group owner.
      ``coverage`` is the per-seed-stable fidelity metric.
    """
    import repro
    from repro.eval.library import resolve_protocol

    failure_config = FailureDetectorConfig(failure_timeout=10.0,
                                           heartbeat_timeout=4.0,
                                           check_interval=1.0)

    # --- Zipf KV over Chord --------------------------------------------
    ops_gap = 0.5
    ops = int(kv_duration * 0.2 / ops_gap)
    kv_spec = ScenarioSpec(
        name="bench-app-kv",
        agents=resolve_protocol("chord"),
        num_nodes=kv_nodes,
        duration=kv_duration,
        failure_config=failure_config,
        models=(
            ChurnModel(join="staggered",
                       join_spacing=(kv_duration * 0.3) / kv_nodes,
                       churn_fraction=0.0),
            WorkloadModel(kind="kv", start=kv_duration * 0.6, packets=ops,
                          gap=ops_gap, keys=64, zipf_s=1.1,
                          read_fraction=0.7, replicas=3, write_quorum=2,
                          read_quorum=2),
        ))
    start = time.perf_counter()
    result = repro.run(kv_spec.with_seed(seed))
    kv_seconds = time.perf_counter() - start
    kv_events = result.metrics["sim.events_processed"]
    kv = {
        "nodes": kv_nodes,
        "duration": kv_duration,
        "seed": seed,
        "seconds": round(kv_seconds, 6),
        "events_processed": int(kv_events),
        "events_per_sec": round(kv_events / kv_seconds),
        "ops": ops,
        "ops_per_sec_wall": round(ops / kv_seconds, 1),
        "quorum_success": repr(result.metrics["workload.quorum_success"]),
        "phantom_reads": repr(result.metrics["workload.phantom_reads"]),
        "replica_coverage": repr(result.metrics["workload.replica_coverage"]),
        "latency_mean": repr(result.metrics["workload.latency_mean"]),
    }

    # --- topic pub/sub over Scribe -------------------------------------
    publish_start = pubsub_duration * 0.5
    publishes = max(4, int(pubsub_duration * 0.05))
    pubsub_spec = ScenarioSpec(
        name="bench-app-pubsub",
        agents=resolve_protocol("scribe-pastry"),
        num_nodes=pubsub_nodes,
        duration=pubsub_duration,
        failure_config=failure_config,
        models=(
            ChurnModel(join="staggered",
                       join_spacing=min(
                           0.15, (pubsub_duration * 0.25) / pubsub_nodes),
                       churn_fraction=0.0),
            WorkloadModel(kind="pubsub", source=0, start=publish_start,
                          packets=publishes, gap=1.0, topics=4, fanout=0),
        ))
    start = time.perf_counter()
    result = repro.run(pubsub_spec.with_seed(seed))
    pubsub_seconds = time.perf_counter() - start
    pubsub_events = result.metrics["sim.events_processed"]
    pubsub = {
        "nodes": pubsub_nodes,
        "duration": pubsub_duration,
        "seed": seed,
        "seconds": round(pubsub_seconds, 6),
        "events_processed": int(pubsub_events),
        "events_per_sec": round(pubsub_events / pubsub_seconds),
        "publishes": publishes,
        "deliveries": int(result.metrics["workload.deliveries"]),
        "coverage": repr(result.metrics["workload.coverage"]),
        "duplicates": int(result.metrics["workload.duplicates"]),
    }
    return {"kv": kv, "pubsub": pubsub}


# -------------------------------------------------------------- adversarial
def bench_adversarial(seeds: tuple[int, ...] = (1, 2)) -> dict:
    """Wall-clock, events/s, and fidelity of two curated adversarial
    scenarios from the library.

    * **flash_crowd** — registry-compiled Chord absorbing a Poisson burst of
      joins against a small warm core, with route probes running through the
      arrival wave;
    * **scribe_flapping** — Scribe-over-Pastry multicast while the stub
      uplinks flap as one-directional cuts.

    Both run under :func:`repro.eval.invariants.check_invariants`;
    ``invariant_violations`` must stay 0, and ``success_ratios`` are
    per-seed-stable fidelity metrics like the core fingerprint.
    """
    from repro.eval.invariants import check_invariants
    from repro.eval.library import library_spec

    benches = {}
    for key, name in (("flash_crowd", "flash-crowd"),
                      ("scribe_flapping", "scribe-flapping")):
        start = time.perf_counter()
        results = [library_spec(name, seed=seed).run() for seed in seeds]
        seconds = time.perf_counter() - start
        events = sum(result.metrics["sim.events_processed"]
                     for result in results)
        violations = sum(len(check_invariants(result)) for result in results)
        benches[key] = {
            "scenario": name,
            "seeds": list(seeds),
            "seconds": round(seconds, 6),
            "events_processed": int(events),
            "events_per_sec": round(events / seconds),
            "invariant_violations": violations,
            "success_ratios": [repr(result.metrics["workload.success_ratio"])
                               for result in results],
        }
    return benches


# ------------------------------------------------------------------------ obs
def bench_obs(seeds: tuple[int, ...] = (1, 2)) -> dict:
    """Observability overhead: one fixed spec, obs off vs fully on.

    The obs-off rate is the gated number (fixed-size, comparable on every
    invocation, like the adversarial benches): with no
    :class:`~repro.obs.ObsConfig` attached the run must execute the
    historical code paths, so a slowdown here is a real hot-path
    regression.  The obs-on pass (trace export + causal tracing + metrics
    snapshot) reports the ``overhead_ratio`` informationally and asserts
    the tentpole's invariance contract: metrics stay byte-identical with
    observability attached.
    """
    import os
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.eval.library import resolve_protocol
    from repro.obs import ObsConfig

    def build(seed: int) -> ScenarioSpec:
        return ScenarioSpec(
            name="bench-obs", agents=resolve_protocol("chord"),
            num_nodes=12, duration=60.0, seed=seed,
            models=(ChurnModel(join="staggered", join_spacing=0.4),
                    WorkloadModel(kind="route", source=-1, start=10.0,
                                  packets=40, gap=1.0)))

    start = time.perf_counter()
    off_results = [build(seed).run() for seed in seeds]
    off_seconds = time.perf_counter() - start
    events = sum(result.metrics["sim.events_processed"]
                 for result in off_results)

    tmp = tempfile.mkdtemp(prefix="bench-obs-")
    try:
        start = time.perf_counter()
        on_results = []
        for seed in seeds:
            obs = ObsConfig(trace_path=os.path.join(tmp, f"t{seed}.jsonl"),
                            causal=True)
            on_results.append(replace(build(seed), obs=obs).run())
        on_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "seeds": list(seeds),
        "seconds": round(off_seconds, 6),
        "events_processed": int(events),
        "events_per_sec": round(events / off_seconds),
        "on_seconds": round(on_seconds, 6),
        "on_events_per_sec": round(events / on_seconds),
        "overhead_ratio": round(on_seconds / off_seconds, 4),
        "metrics_identical": all(
            on.metrics == off.metrics
            for on, off in zip(on_results, off_results)),
    }


# ---------------------------------------------------------------- fingerprint
def metrics_fingerprint(seed: int = 7, num_hosts: int = 64,
                        num_packets: int = 2_000) -> dict:
    """Deterministic delivery/latency metrics for a fixed-seed experiment.

    Every field must be identical run-to-run and across refactors of the
    engine/emulator hot path; floats are recorded via ``repr`` so the
    comparison is byte-exact.
    """
    simulator = Simulator(seed=seed)
    topology = transit_stub_topology(num_hosts, seed=seed)
    emulator = NetworkEmulator(simulator, topology, random_loss_rate=0.01)
    addresses = [emulator.attach_host().address for _ in range(num_hosts)]

    latencies: list[float] = []

    def on_receive(packet: Packet) -> None:
        latencies.append(simulator.now - packet.created_at)

    for address in addresses:
        emulator.set_receive_callback(address, on_receive)

    rng = simulator.fork_rng("bench-traffic")

    def send_one(src: int, dst: int, size: int) -> None:
        emulator.send(Packet(src=src, dst=dst, payload=None, size=size),
                      payload_tag=f"probe-{size % 7}")

    for index in range(num_packets):
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts)
        if dst == src:
            dst = (dst + 1) % num_hosts
        size = rng.randint(100, 1400)
        simulator.schedule(index * 0.005, send_one,
                           addresses[src], addresses[dst], size)
    simulator.run()

    stress = max((view.max_stress for view in emulator.link_stats().values()),
                 default=0)
    return {
        "packets_sent": emulator.stats.packets_sent,
        "packets_delivered": emulator.stats.packets_delivered,
        "packets_dropped": emulator.stats.packets_dropped,
        "bytes_delivered": emulator.stats.bytes_delivered,
        "events_processed": simulator.events_processed,
        "final_time": repr(simulator.now),
        "latency_count": len(latencies),
        "latency_sum": repr(sum(latencies)),
        "max_link_stress": stress,
    }


# --------------------------------------------------------------------- check
def _nested_get(document, *path):
    """Walk nested dicts; None as soon as a key is missing.

    The reference entry may predate a benchmark (first run after a new bench
    name lands) and the entry may drop one; a missing name must be reported
    and skipped, never KeyError the whole check.
    """
    for key in path:
        if not isinstance(document, dict):
            return None
        document = document.get(key)
        if document is None:
            return None
    return document


def check_against(entry: dict, reference: dict | None, position: int) -> int:
    """Compare *entry*'s throughput against the *reference* entry.

    Kernel events/s, emulator packets/s, scenario_churn events/s, and the
    scale benches' events/s may not regress more than
    ``CHECK_REGRESSION_TOLERANCE`` below the last ``BENCH_core.json`` entry.
    Benchmark names the reference (or the entry) does not record — a newly
    added bench on its first gated run — are reported and skipped.  Returns
    0 when within tolerance (or when there is no history to compare
    against), 1 on regression.
    """
    if reference is None:
        print("\n--check: no recorded BENCH_core.json entry to compare "
              "against; skipping")
        return 0
    checks = []
    skipped = []
    for name, path in (
        ("kernel events/s", ("kernel", "events_per_sec")),
        ("emulator packets/s", ("emulator", "packets_per_sec")),
        ("scenario_churn events/s", ("scenario_churn", "events_per_sec")),
        # The adversarial library scenarios are fixed-size, so their rates
        # are comparable on every invocation, smoke included.
        ("adversarial flash_crowd events/s",
         ("adversarial", "flash_crowd", "events_per_sec")),
        ("adversarial scribe_flapping events/s",
         ("adversarial", "scribe_flapping", "events_per_sec")),
        # Fixed-size too: the obs-off rate of the observability bench —
        # instrumentation hooks may not slow down an uninstrumented run.
        ("obs-off events/s", ("obs", "events_per_sec")),
    ):
        measured = _nested_get(entry, *path)
        recorded = _nested_get(reference, *path)
        if measured is None or recorded is None:
            skipped.append((name, "not recorded in both entries"))
            continue
        checks.append((name, measured, recorded))
    # Scale rates are only comparable at identical workload shapes; a smoke
    # run keeps its small scale budget, so its scale rates are not gated
    # (the full-size gate runs on full benchmark invocations).
    for proto, size_keys in (("chord", ("nodes", "duration")),
                             ("scribe", ("nodes",))):
        entry_bench = _nested_get(entry, "scale", proto)
        reference_bench = _nested_get(reference, "scale", proto)
        if entry_bench is None or reference_bench is None:
            skipped.append((f"scale {proto}", "not recorded in both entries"))
            continue
        if all(entry_bench.get(key) == reference_bench.get(key)
               for key in size_keys):
            checks.append(
                (f"scale {proto} events/s",
                 entry_bench["events_per_sec"],
                 reference_bench["events_per_sec"]))
        else:
            skipped.append((f"scale {proto}",
                            "run at different sizes than the reference "
                            "(smoke budget); rate not compared"))
    # App-layer rates compare like scale rates: only at identical sizes.
    for bench in ("kv", "pubsub"):
        entry_bench = _nested_get(entry, "app", bench)
        reference_bench = _nested_get(reference, "app", bench)
        if entry_bench is None or reference_bench is None:
            skipped.append((f"app {bench}", "not recorded in both entries"))
            continue
        if all(entry_bench.get(key) == reference_bench.get(key)
               for key in ("nodes", "duration")):
            checks.append((f"app {bench} events/s",
                           entry_bench["events_per_sec"],
                           reference_bench["events_per_sec"]))
        else:
            skipped.append((f"app {bench}",
                            "run at different sizes than the reference "
                            "(smoke budget); rate not compared"))
    # Shard rates compare like scale rates: only at identical workload
    # shapes and shard counts (smoke runs use a small shard budget).
    for proto in ("chord", "scribe"):
        entry_bench = _nested_get(entry, "shard", proto)
        reference_bench = _nested_get(reference, "shard", proto)
        if entry_bench is None or reference_bench is None:
            skipped.append((f"shard {proto}", "not recorded in both entries"))
            continue
        if any(entry_bench.get(key) != reference_bench.get(key)
               for key in ("nodes", "duration")):
            skipped.append((f"shard {proto}",
                            "run at different sizes than the reference "
                            "(smoke budget); rate not compared"))
            continue
        reference_runs = {run.get("shards"): run
                          for run in reference_bench.get("runs", [])}
        for run in entry_bench.get("runs", []):
            recorded_run = reference_runs.get(run.get("shards"))
            if recorded_run is None:
                continue
            checks.append((f"shard {proto} x{run['shards']} events/s",
                           run["events_per_sec"],
                           recorded_run["events_per_sec"]))

    floor = 1.0 - CHECK_REGRESSION_TOLERANCE
    failed = False
    print(f"\n--check vs entry #{position} "
          f"({reference.get('label') or 'unlabelled'}, "
          f"{reference.get('git_rev', '?')}):")
    for name, reason in skipped:
        print(f"  {name}: {reason}")
    # Machine-independent determinism gate: a sharded run with shards=1 must
    # have reproduced the single-process metrics byte-identically.  Unlike
    # the rates this compares the *entry against itself*, so it holds on any
    # runner, smoke included.
    for proto in ("chord", "scribe"):
        identical = _nested_get(entry, "shard", proto, "shard1_identical")
        if identical is None:
            continue
        verdict = "OK" if identical else "FINGERPRINT MISMATCH"
        print(f"  shard {proto} shards=1 == single-process: {verdict}")
        if not identical:
            failed = True
    for name, measured, recorded in checks:
        ratio = measured / recorded if recorded else float("inf")
        verdict = "OK" if ratio >= floor else "REGRESSION"
        print(f"  {name}: {measured} vs {recorded} recorded "
              f"({ratio:.2f}x) {verdict}")
        if ratio < floor:
            failed = True
    if failed:
        print(f"--check FAILED: throughput fell more than "
              f"{int(CHECK_REGRESSION_TOLERANCE * 100)}% below the last "
              f"recorded entry")
        return 1
    return 0


# -------------------------------------------------------------------- output
def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def load_results(path: Path) -> dict:
    if path.exists():
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("schema_version") != SCHEMA_VERSION:
            raise SystemExit(f"{path} has unsupported schema_version "
                             f"{document.get('schema_version')!r}")
        return document
    return {
        "schema_version": SCHEMA_VERSION,
        "description": ("Simulation-core microbenchmark history; one entry "
                        "appended per scripts/run_benchmarks.py invocation. "
                        "See docs/PERFORMANCE.md for the schema."),
        "entries": [],
    }


def main(argv: list[str] | None = None) -> int:
    config = load_bench_config()
    # allow_abbrev=False: a typo'd --event must not silently run (and pollute
    # the recorded history) as --events.
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                     allow_abbrev=False)
    parser.add_argument("--label", default="", help="free-form entry label")
    parser.add_argument("--output",
                        default=str(REPO_ROOT / config["results_file"]),
                        help="results file to append to, or '-' for stdout only")
    parser.add_argument("--events", type=int, default=config["kernel_events"],
                        help="kernel microbench event count")
    parser.add_argument("--hosts", type=int, default=config["emulator_hosts"],
                        help="emulator microbench host count")
    parser.add_argument("--packets", type=int,
                        default=config["emulator_packets"],
                        help="emulator microbench packet count")
    parser.add_argument("--neighbors", type=int,
                        default=config["neighbors_per_host"],
                        help="overlay neighbours per host in the emulator bench")
    parser.add_argument("--scenario-nodes", type=int,
                        default=config["scenario_nodes"],
                        help="overlay size of the churn scenario bench")
    parser.add_argument("--scenario-duration", type=float,
                        default=config["scenario_duration"],
                        help="simulated seconds of the churn scenario bench")
    parser.add_argument("--scale-nodes", type=int,
                        default=config["scale_nodes"],
                        help="Chord overlay size of the scale bench")
    parser.add_argument("--scale-duration", type=float,
                        default=config["scale_duration"],
                        help="simulated seconds of the Chord scale bench")
    parser.add_argument("--scale-scribe-nodes", type=int,
                        default=config["scale_scribe_nodes"],
                        help="Scribe-over-Pastry overlay size of the scale bench")
    parser.add_argument("--shard-nodes", type=int,
                        default=config["shard_nodes"],
                        help="Chord overlay size of the sharded-kernel bench")
    parser.add_argument("--shard-duration", type=float,
                        default=config["shard_duration"],
                        help="simulated seconds of the sharded Chord bench")
    parser.add_argument("--shard-scribe-nodes", type=int,
                        default=config["shard_scribe_nodes"],
                        help="Scribe overlay size of the sharded-kernel bench")
    parser.add_argument("--shard-scribe-duration", type=float,
                        default=config["shard_scribe_duration"],
                        help="simulated seconds of the sharded Scribe bench")
    parser.add_argument("--app-kv-nodes", type=int,
                        default=config["app_kv_nodes"],
                        help="Chord overlay size of the app KV bench")
    parser.add_argument("--app-kv-duration", type=float,
                        default=config["app_kv_duration"],
                        help="simulated seconds of the app KV bench")
    parser.add_argument("--app-pubsub-nodes", type=int,
                        default=config["app_pubsub_nodes"],
                        help="Scribe overlay size of the app pub/sub bench")
    parser.add_argument("--app-pubsub-duration", type=float,
                        default=config["app_pubsub_duration"],
                        help="simulated seconds of the app pub/sub bench")
    parser.add_argument("--shard-counts", type=str, default="1,4,8",
                        help="comma-separated shard counts to bench "
                             "(default 1,4,8)")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a smoke run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke pass: --quick sizes, stdout only "
                             "(BENCH_core.json is not touched)")
    parser.add_argument("--check", action="store_true",
                        help="compare kernel events/s, emulator packets/s, "
                             "scenario_churn events/s, and scale events/s "
                             "against the last recorded BENCH_core.json entry "
                             "and exit 1 on a >%d%% regression"
                             % int(CHECK_REGRESSION_TOLERANCE * 100))
    args = parser.parse_args(argv)

    if args.smoke:
        args.quick = True
        args.output = "-"
    if args.quick:
        args.events, args.hosts, args.packets = 20_000, 100, 3_000
        args.scenario_nodes = 10
        args.scenario_duration = 120.0
        # Scale smoke: still 200 Chord nodes (the point is exercising the
        # hundreds-of-nodes path on every PR) but a small event budget, and
        # a halved Scribe population to cap the gossip-heavy wall-clock.
        args.scale_nodes = 200
        args.scale_duration = 30.0
        args.scale_scribe_nodes = 100
        # Shard smoke: small populations, shards {1, 4} — enough to exercise
        # the fork/barrier machinery and the shards=1 identity gate without
        # the full-size wall-clock.
        args.shard_nodes = 120
        args.shard_duration = 20.0
        args.shard_scribe_nodes = 60
        args.shard_scribe_duration = 60.0
        args.shard_counts = "1,4"
        # App smoke: small overlays, full choreography (joins, replication
        # or tree building, then the measured workload burst).
        args.app_kv_nodes = 60
        args.app_kv_duration = 60.0
        args.app_pubsub_nodes = 40
        args.app_pubsub_duration = 90.0

    # Validate the results file before spending ~a minute benchmarking.
    document = load_results(Path(args.output)) if args.output != "-" else None

    reference = None
    if args.check:
        history = load_results(REPO_ROOT / config["results_file"]) \
            if (REPO_ROOT / config["results_file"]).exists() else {"entries": []}
        reference = history["entries"][-1] if history["entries"] else None
        if reference is not None:
            # Rates are only comparable at identical workload shapes, so the
            # checked benches re-run at the reference entry's dimensions
            # (kernel/emulator are ~a second each; the scenario and scale
            # benches dominate but stay within a CI-friendly minute).
            # Older entries did not record every size; keep defaults then.
            # Sizes missing from the reference (an entry recorded before a
            # bench name existed) drop out: the bench then runs at its
            # defaults and check_against skips its rate comparison.
            checked_sizes = {
                "events": _nested_get(reference, "kernel", "events"),
                "hosts": _nested_get(reference, "emulator", "hosts"),
                "packets": _nested_get(reference, "emulator", "packets"),
                "neighbors": _nested_get(reference, "emulator", "neighbors"),
                "scenario_nodes":
                    _nested_get(reference, "scenario_churn", "nodes"),
                "scenario_duration":
                    _nested_get(reference, "scenario_churn", "duration"),
            }
            # The scale benches are only re-run at reference sizes on full
            # invocations: a smoke run keeps its small scale budget (the CI
            # job's wall-clock cap) and check_against skips their rate
            # comparison instead.
            if not args.smoke:
                checked_sizes.update({
                    "scale_nodes":
                        _nested_get(reference, "scale", "chord", "nodes"),
                    "scale_duration":
                        _nested_get(reference, "scale", "chord", "duration"),
                    "scale_scribe_nodes":
                        _nested_get(reference, "scale", "scribe", "nodes"),
                    "shard_nodes":
                        _nested_get(reference, "shard", "chord", "nodes"),
                    "shard_duration":
                        _nested_get(reference, "shard", "chord", "duration"),
                    "shard_scribe_nodes":
                        _nested_get(reference, "shard", "scribe", "nodes"),
                    "shard_scribe_duration":
                        _nested_get(reference, "shard", "scribe", "duration"),
                    "app_kv_nodes":
                        _nested_get(reference, "app", "kv", "nodes"),
                    "app_kv_duration":
                        _nested_get(reference, "app", "kv", "duration"),
                    "app_pubsub_nodes":
                        _nested_get(reference, "app", "pubsub", "nodes"),
                    "app_pubsub_duration":
                        _nested_get(reference, "app", "pubsub", "duration"),
                })
            checked_sizes = {name: size
                             for name, size in checked_sizes.items()
                             if size is not None}
            overridden = {name: (getattr(args, name), size)
                          for name, size in checked_sizes.items()
                          if getattr(args, name) != size}
            if overridden:
                print("--check: re-running kernel/emulator benches at the "
                      "reference entry's sizes for a valid comparison:")
                for name, (given, used) in sorted(overridden.items()):
                    print(f"  {name}: {given} -> {used}")
            for name, size in checked_sizes.items():
                setattr(args, name, size)

    try:
        shard_counts = tuple(int(part) for part
                             in args.shard_counts.split(",") if part.strip())
    except ValueError:
        parser.error(f"--shard-counts must be comma-separated integers, "
                     f"got {args.shard_counts!r}")
    if not shard_counts or any(count < 1 for count in shard_counts):
        parser.error("--shard-counts needs at least one count >= 1")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "label": args.label,
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "host": host_provenance(),
        "kernel": bench_kernel(args.events),
        "emulator": bench_emulator(args.hosts, args.packets, args.neighbors),
        "scenario_churn": bench_scenario_churn(args.scenario_nodes,
                                               args.scenario_duration),
        "scale": bench_scale(args.scale_nodes, args.scale_duration,
                             args.scale_scribe_nodes),
        "shard": bench_shard(args.shard_nodes, args.shard_duration,
                             args.shard_scribe_nodes,
                             args.shard_scribe_duration,
                             shard_counts),
        "app": bench_app(args.app_kv_nodes, args.app_kv_duration,
                         args.app_pubsub_nodes, args.app_pubsub_duration),
        "adversarial": bench_adversarial(),
        "obs": bench_obs(),
        "fingerprint": metrics_fingerprint(),
    }

    print(json.dumps(entry, indent=2))
    check_status = 0
    if args.check:
        check_status = check_against(entry, reference,
                                     len(history["entries"]))
        if check_status != 0 and document is not None:
            # A regressed entry must not become the next run's reference —
            # recording it would ratchet the floor down 30% at a time.
            print(f"not appending the regressed entry to {args.output}")
            document = None
    if document is not None:
        path = Path(args.output)
        previous = document["entries"][0] if document["entries"] else None
        document["entries"].append(entry)
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"\nappended entry #{len(document['entries'])} to {path}")
        if previous is not None:
            kernel_speedup = (entry["kernel"]["events_per_sec"]
                              / previous["kernel"]["events_per_sec"])
            emulator_speedup = (entry["emulator"]["packets_per_sec"]
                                / previous["emulator"]["packets_per_sec"])
            same = entry["fingerprint"] == previous["fingerprint"]
            print(f"vs entry #1 ({previous['label'] or 'baseline'}): "
                  f"kernel {kernel_speedup:.2f}x, emulator {emulator_speedup:.2f}x, "
                  f"fingerprint {'IDENTICAL' if same else 'CHANGED'}")
    return check_status


if __name__ == "__main__":
    raise SystemExit(main())
