#!/usr/bin/env python
"""No-regression gate over the tier-1 suite, with a shrink-only baseline.

This gate runs the full suite and compares the failing set against the
committed baseline in ``tests/known_failures.txt``:

* a failure **not** in the baseline is a regression → exit 1;
* a baseline entry that now **passes** is stale → exit 1 until it is pruned
  in the same PR that fixed it.

The second rule makes the baseline monotonically shrinking: entries can
only ever be removed (when fixed) or added deliberately alongside the
commit that knowingly introduces a failure, never silently resurrected.

Usage::

    python scripts/ci_gate.py                             # run + gate
    python scripts/ci_gate.py --junitxml report.xml       # also write junit
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tests" / "known_failures.txt"


def load_baseline() -> set[str]:
    lines = BASELINE.read_text(encoding="utf-8").splitlines()
    return {line.strip() for line in lines
            if line.strip() and not line.startswith("#")}


def run_suite(junitxml: str | None = None) -> tuple[set[str], str, int]:
    command = [sys.executable, "-m", "pytest", "-q", "--tb=no", "-rfE"]
    if junitxml:
        command.append(f"--junitxml={junitxml}")
    process = subprocess.run(
        command,
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**__import__("os").environ,
             "PYTHONPATH": f"{REPO_ROOT / 'src'}"},
    )
    output = process.stdout + process.stderr
    # Test ids may contain spaces (parametrized ids like test_foo[a b]), so
    # match up to pytest's " - <message>" separator rather than up to the
    # first whitespace.
    failing = set(re.findall(r"^(?:FAILED|ERROR) (.+?)(?: - .*)?$",
                             output, flags=re.MULTILINE))
    return failing, output, process.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--junitxml", default=None, metavar="PATH",
                        help="also write pytest's junit XML report to PATH "
                             "(uploaded as a CI artifact on failure)")
    args = parser.parse_args()
    baseline = load_baseline()
    failing, output, returncode = run_suite(args.junitxml)
    print(output.splitlines()[-1] if output.splitlines() else "(no output)")

    # Exit codes other than 0 (all passed) / 1 (some tests failed) mean
    # pytest itself blew up — collection error, bad conftest, usage error —
    # and per-test FAILED/ERROR lines may be absent entirely.  Never let
    # that read as green.
    if returncode not in (0, 1):
        print(f"\npytest exited with code {returncode} (internal/collection "
              f"error) — failing the gate.  Tail of output:")
        for line in output.splitlines()[-15:]:
            print(f"  {line}")
        return 1
    passed = re.search(r"(\d+) passed", output)
    if passed is None or int(passed.group(1)) == 0:
        print("\nno tests passed — the suite did not actually run; "
              "failing the gate")
        return 1

    regressions = sorted(failing - baseline)
    fixed = sorted(baseline - failing)
    status = 0
    if fixed:
        noun = "entry now passes" if len(fixed) == 1 else "entries now pass"
        print(f"\nSTALE BASELINE: {len(fixed)} baseline {noun} — prune "
              f"from {BASELINE.relative_to(REPO_ROOT)} in this PR "
              f"(the baseline only shrinks):")
        for test in fixed:
            print(f"  {test}")
        status = 1
    if regressions:
        print(f"\nREGRESSION: {len(regressions)} test(s) failing beyond the "
              f"known baseline:")
        for test in regressions:
            print(f"  {test}")
        status = 1
    if status == 0:
        print(f"\ngate OK: {len(failing)} failure(s), all in the known "
              f"baseline ({len(baseline)} entries)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
