#!/usr/bin/env python
"""No-regression gate over the tier-1 suite.

The seed repository ships without the bundled ``specs/*.mac`` protocol
suite, so a known set of spec-dependent tests fails until it lands (see
ROADMAP.md).  Plain ``pytest -x`` would therefore be red on every commit and
useless as CI.  This gate runs the full suite and compares the failing set
against the committed baseline in ``tests/known_failures.txt``:

* a failure **not** in the baseline is a regression → exit 1;
* a baseline entry that now passes is progress → reported, and the baseline
  should be pruned in the same PR that fixed it.

Usage::

    python scripts/ci_gate.py            # runs pytest, applies the gate
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tests" / "known_failures.txt"


def load_baseline() -> set[str]:
    lines = BASELINE.read_text(encoding="utf-8").splitlines()
    return {line.strip() for line in lines
            if line.strip() and not line.startswith("#")}


def run_suite() -> tuple[set[str], str, int]:
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "--tb=no", "-rfE"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**__import__("os").environ,
             "PYTHONPATH": f"{REPO_ROOT / 'src'}"},
    )
    output = process.stdout + process.stderr
    failing = set(re.findall(r"^(?:FAILED|ERROR) (\S+?)(?: - .*)?$",
                             output, flags=re.MULTILINE))
    return failing, output, process.returncode


def main() -> int:
    baseline = load_baseline()
    failing, output, returncode = run_suite()
    print(output.splitlines()[-1] if output.splitlines() else "(no output)")

    # Exit codes other than 0 (all passed) / 1 (some tests failed) mean
    # pytest itself blew up — collection error, bad conftest, usage error —
    # and per-test FAILED/ERROR lines may be absent entirely.  Never let
    # that read as green.
    if returncode not in (0, 1):
        print(f"\npytest exited with code {returncode} (internal/collection "
              f"error) — failing the gate.  Tail of output:")
        for line in output.splitlines()[-15:]:
            print(f"  {line}")
        return 1
    passed = re.search(r"(\d+) passed", output)
    if passed is None or int(passed.group(1)) == 0:
        print("\nno tests passed — the suite did not actually run; "
              "failing the gate")
        return 1

    regressions = sorted(failing - baseline)
    fixed = sorted(baseline - failing)
    if fixed:
        print(f"\n{len(fixed)} baseline failure(s) now pass — prune them "
              f"from {BASELINE.relative_to(REPO_ROOT)}:")
        for test in fixed:
            print(f"  {test}")
    if regressions:
        print(f"\nREGRESSION: {len(regressions)} test(s) failing beyond the "
              f"known baseline:")
        for test in regressions:
            print(f"  {test}")
        return 1
    print(f"\ngate OK: {len(failing)} failure(s), all in the known baseline "
          f"({len(baseline)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
