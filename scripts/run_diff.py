#!/usr/bin/env python
"""Differential sim-vs-live harness: one spec, both modes, declared drift.

Runs one :class:`~repro.eval.scenario.ScenarioSpec` through
``repro.run(mode="sim")`` and ``repro.run(mode="live")`` across a set of
seeds, diffs the metric distributions against per-metric tolerances (see
:mod:`repro.eval.diff`), checks the live invariants on every live outcome,
and prints a machine-readable drift report (schema ``repro.diff/1``).

The default spec is a small chord deployment with mid-run churn — the same
fault model compiled two ways: the scenario engine crashes simulated nodes;
the live coordinator SIGKILLs real processes and respawns them.  Pass
``--artifact`` to diff a fuzzer-generated spec instead (only live-runnable
artifacts: ``repro.fuzz/1`` files tag themselves).

Usage::

    PYTHONPATH=src python scripts/run_diff.py --seeds 2
    PYTHONPATH=src python scripts/run_diff.py --artifact fuzz-000123.json \
        --out drift.json

Exits non-zero on drift beyond tolerance, a missing required metric, or any
live invariant violation — the CI ``diff-smoke`` gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.diff import (DEFAULT_TOLERANCES, Tolerance,  # noqa: E402
                             run_diff)


def default_spec():
    """Small chord churn spec sized for a CI machine: 6 nodes, one node
    fail-stops mid-workload and rejoins, lookups keep flowing throughout."""
    from repro.eval.library import FAST_FAILURE, resolve_protocol
    from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel

    return ScenarioSpec(
        name="diff-chord-churn",
        agents=resolve_protocol("chord"),
        num_nodes=6,
        duration=120.0,
        failure_config=FAST_FAILURE,
        models=(
            ChurnModel(join="staggered", join_spacing=0.5,
                       churn_fraction=0.2, churn_start=30.0, churn_end=60.0,
                       downtime=8.0),
            WorkloadModel(kind="route", source=-1, start=15.0, packets=48,
                          gap=2.0),
        ),
    )


def artifact_spec(path: Path):
    from repro.eval.fuzz import spec_from_dict
    from repro.live.faults import live_runnable

    payload = json.loads(path.read_text())
    spec_dict = payload.get("spec", payload)
    spec = spec_from_dict(spec_dict)
    ok, reason = live_runnable(spec)
    if not ok:
        raise SystemExit(f"artifact {path} is not live-runnable: {reason}")
    return spec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                     allow_abbrev=False)
    parser.add_argument("--artifact", type=Path, default=None,
                        help="diff a repro.fuzz/1 artifact instead of the "
                             "built-in chord churn spec")
    parser.add_argument("--seeds", type=int, default=1,
                        help="seed count; seed i of N runs both modes "
                             "(default 1)")
    parser.add_argument("--first-seed", type=int, default=1,
                        help="first seed (default 1)")
    parser.add_argument("--base-port", type=int, default=47400,
                        help="first UDP port for the live deployments "
                             "(default 47400)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=ABS",
                        help="override one metric's absolute tolerance "
                             "(repeatable), e.g. workload.success_ratio=0.2")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report to this path")
    args = parser.parse_args(argv)

    spec = artifact_spec(args.artifact) if args.artifact else default_spec()

    tolerances = list(DEFAULT_TOLERANCES)
    for override in args.tolerance:
        metric, _, value = override.partition("=")
        if not value:
            parser.error(f"--tolerance wants METRIC=ABS, got {override!r}")
        tolerances = [t for t in tolerances if t.metric != metric]
        tolerances.append(Tolerance(metric, abs=float(value)))

    seeds = list(range(args.first_seed, args.first_seed + args.seeds))
    report = run_diff(spec, seeds=seeds, tolerances=tolerances,
                      live_overrides={"base_port": args.base_port})

    document = report.to_dict()
    print(json.dumps(document, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
