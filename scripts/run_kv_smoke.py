#!/usr/bin/env python
"""CI smoke for the application layer: a 50-node KV store under churn.

Runs one Zipf-skewed replicated-KV scenario (3-way replication, W=2/Q=2
quorums) over registry-compiled Chord with 10% of the membership cycling
out and back, via the ``repro.run`` facade, and gates on the quorum success
ratio plus the version-space consistency checks (no phantom reads).

Usage::

    PYTHONPATH=src python scripts/run_kv_smoke.py --min-success 0.9

Prints one JSON document and exits non-zero below ``--min-success`` or on
any phantom read.  Deliberately separate from the bench ``--check`` gate:
this scores application correctness under churn, not throughput, and never
touches BENCH_core.json.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.eval.library import FAST_FAILURE, resolve_protocol  # noqa: E402
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel  # noqa: E402


def build_spec(nodes: int, duration: float, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="kv-smoke",
        agents=resolve_protocol("chord"),
        num_nodes=nodes,
        duration=duration,
        seed=seed,
        failure_config=FAST_FAILURE,
        models=(
            ChurnModel(join="staggered",
                       join_spacing=(duration * 0.25) / nodes,
                       churn_fraction=0.10,
                       churn_start=duration * 0.3,
                       churn_end=duration * 0.55,
                       downtime=15.0),
            WorkloadModel(kind="kv", start=duration * 0.45,
                          packets=int(duration * 0.4), gap=1.0,
                          keys=32, zipf_s=1.1, read_fraction=0.7,
                          replicas=3, write_quorum=2, read_quorum=2,
                          # Few fixed clients: an op dies with its issuer, so
                          # a churned client would score against the quorum
                          # path this smoke is meant to gate.
                          clients=4, repair_gap=20.0),
        ))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                     allow_abbrev=False)
    parser.add_argument("--nodes", type=int, default=50)
    parser.add_argument("--duration", type=float, default=240.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--shards", type=int, default=1,
                        help="run on the sharded kernel (default 1)")
    parser.add_argument("--min-success", type=float, default=0.9,
                        help="exit 1 if kv quorum success is below this")
    args = parser.parse_args(argv)

    spec = build_spec(args.nodes, args.duration, args.seed)
    result = repro.run(spec, shards=args.shards)
    workload = {key: value for key, value in result.metrics.items()
                if key.startswith("workload.")}
    print(json.dumps({"name": spec.name, "nodes": args.nodes,
                      "duration": args.duration, "seed": args.seed,
                      "metrics": workload}, indent=2))

    failed = False
    success = result.metrics["workload.quorum_success"]
    if success < args.min_success:
        print(f"FAILED: kv quorum success {success:.3f} < required "
              f"{args.min_success}", file=sys.stderr)
        failed = True
    phantoms = result.metrics["workload.phantom_reads"]
    if phantoms:
        print(f"FAILED: {int(phantoms)} phantom read(s) — a get returned a "
              f"version no client ever wrote", file=sys.stderr)
        failed = True
    if not failed:
        print(f"OK: quorum success {success:.3f} >= {args.min_success}, "
              f"0 phantom reads", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
