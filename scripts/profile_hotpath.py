#!/usr/bin/env python
"""Profile the protocol-plane hot path so perf PRs start from data.

Runs a short churn scenario (registry-compiled Chord, staggered joins, 10%
membership cycling, route probes — the same shape as ``bench_scenario_churn``
in ``scripts/run_benchmarks.py``) under :mod:`cProfile` and prints the top
functions.  This is the workload whose events/s is tracked in
``BENCH_core.json``, so whatever dominates here is what the next perf PR
should attack (see docs/PERFORMANCE.md, "Protocol plane").

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py
    PYTHONPATH=src python scripts/profile_hotpath.py --nodes 50 --duration 60
    PYTHONPATH=src python scripts/profile_hotpath.py --sort tottime --top 30
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.runner import ScenarioRunner  # noqa: E402
from repro.eval.scenario import ChurnModel, ScenarioSpec, WorkloadModel  # noqa: E402
from repro.protocols import chord_agent  # noqa: E402
from repro.runtime.failure import FailureDetectorConfig  # noqa: E402


def build_spec(num_nodes: int, duration: float) -> ScenarioSpec:
    """The churn-bench scenario at profile-friendly sizes."""
    return ScenarioSpec(
        name="profile-chord-churn",
        agents=lambda: [chord_agent()],
        num_nodes=num_nodes,
        duration=duration,
        failure_config=FailureDetectorConfig(failure_timeout=10.0,
                                             heartbeat_timeout=4.0,
                                             check_interval=1.0),
        models=(
            ChurnModel(join="staggered", join_spacing=0.5, churn_fraction=0.10,
                       churn_start=duration * 0.25, churn_end=duration * 0.85,
                       downtime=15.0),
            WorkloadModel(kind="route", source=-1, start=duration * 0.15,
                          packets=int(duration // 2), gap=1.5),
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                     allow_abbrev=False)
    parser.add_argument("--nodes", type=int, default=20,
                        help="overlay size (default: 20, the bench shape)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds (default: 120)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--top", type=int, default=20,
                        help="how many functions to print (default: 20)")
    parser.add_argument("--sort", choices=["cumulative", "tottime", "ncalls"],
                        default="cumulative",
                        help="pstats sort order (default: cumulative)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also dump raw pstats data to FILE "
                             "(inspect later with `python -m pstats FILE`)")
    args = parser.parse_args(argv)

    # Compile the spec before profiling so codegen/import noise does not
    # drown out the steady-state hot path the benchmarks measure.
    chord_agent()
    spec = build_spec(args.nodes, args.duration)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    summary = ScenarioRunner(spec, seeds=[args.seed]).run()
    profiler.disable()
    wall = time.perf_counter() - start

    events = sum(result.metrics["sim.events_processed"]
                 for result in summary.results)
    print(f"profiled {args.nodes} nodes x {args.duration:.0f} sim-seconds: "
          f"{int(events)} events in {wall:.2f}s wall "
          f"({events / wall:,.0f} events/s under the profiler)\n")

    stats = pstats.Stats(profiler)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw profile written to {args.output}\n")
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
