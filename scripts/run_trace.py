#!/usr/bin/env python
"""Report over ``repro.trace/1`` / ``repro.obs/1`` observability artifacts.

Both execution modes produce the same artifact shapes (see
docs/OBSERVABILITY.md): the simulator's streaming :class:`TraceSink` and
the live coordinator's merged causal hop records write ``repro.trace/1``
JSONL, and every mode snapshots its metrics registry as a ``repro.obs/1``
document.  This script is therefore mode-agnostic: point it at any trace
file and it prints per-category record counts, the top-talking nodes, the
reconstructed per-request route paths (hop-count histogram plus per-hop
latency distribution), and — with ``--obs`` — a summary of the metrics
snapshot, drift-ready for diffing against another run's.

Usage::

    PYTHONPATH=src python scripts/run_trace.py trace.jsonl
    PYTHONPATH=src python scripts/run_trace.py trace.jsonl --obs obs.json
    PYTHONPATH=src python scripts/run_trace.py trace.jsonl --routes 5 --json

Exits non-zero if an artifact fails schema validation — the same check the
CI obs-smoke job relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.metrics import mean, percentile          # noqa: E402
from repro.obs import (load_obs_snapshot, load_trace,    # noqa: E402
                       reconstruct_routes)


def category_counts(records: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        counts[record["cat"]] = counts.get(record["cat"], 0) + 1
    return dict(sorted(counts.items(), key=lambda item: -item[1]))


def top_talkers(records: list[dict], limit: int) -> list[dict]:
    per_node: dict[int, int] = {}
    for record in records:
        per_node[record["node"]] = per_node.get(record["node"], 0) + 1
    ranked = sorted(per_node.items(), key=lambda item: (-item[1], item[0]))
    return [{"node": node, "records": count}
            for node, count in ranked[:limit]]


def route_summary(routes: list[dict]) -> dict:
    if not routes:
        return {"routes": 0}
    hop_histogram: dict[int, int] = {}
    for route in routes:
        hop_histogram[route["hops"]] = hop_histogram.get(route["hops"], 0) + 1
    hop_latencies = [latency for route in routes
                     for latency in route["latencies"]]
    totals = [route["total_latency"] for route in routes]
    return {
        "routes": len(routes),
        "hops_mean": mean([float(route["hops"]) for route in routes]),
        "hops_max": max(route["hops"] for route in routes),
        "hop_histogram": {str(hops): count for hops, count
                          in sorted(hop_histogram.items())},
        "hop_latency_mean": mean(hop_latencies),
        "hop_latency_p95": percentile(hop_latencies, 0.95),
        "total_latency_mean": mean(totals),
        "total_latency_p95": percentile(totals, 0.95),
    }


def obs_summary(snapshot: dict) -> dict:
    return {
        "mode": snapshot.get("mode"),
        "name": snapshot.get("name"),
        "seed": snapshot.get("seed"),
        "counters": {name: value
                     for name, value in snapshot["counters"].items()
                     if value},
        "gauges": snapshot["gauges"],
        "histograms": {
            name: {"count": histogram["count"],
                   "mean": (histogram["sum"] / histogram["count"]
                            if histogram["count"] else 0.0),
                   "max": histogram["max"]}
            for name, histogram in snapshot["histograms"].items()
            if histogram["count"]},
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Summarise repro.trace/1 and repro.obs/1 artifacts")
    parser.add_argument("trace", help="repro.trace/1 JSONL file")
    parser.add_argument("--obs", help="repro.obs/1 snapshot to summarise")
    parser.add_argument("--talkers", type=int, default=8,
                        help="how many top-talking nodes to list")
    parser.add_argument("--routes", type=int, default=3,
                        help="how many example route paths to print")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON document")
    args = parser.parse_args()

    try:
        header, records = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    routes = reconstruct_routes(records)
    report = {
        "file": args.trace,
        "header": header,
        "records": len(records),
        "categories": category_counts(records),
        "top_talkers": top_talkers(records, args.talkers),
        "route_paths": route_summary(routes),
        "example_routes": [
            {"trace_id": route["trace_id"], "path": route["path"],
             "hops": route["hops"],
             "total_latency": route["total_latency"]}
            for route in routes[:args.routes]],
    }
    if args.obs:
        try:
            report["obs"] = obs_summary(load_obs_snapshot(args.obs))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.json:
        print(json.dumps(report, indent=2, default=repr))
        return 0

    print(f"trace: {args.trace}  ({report['records']} records, "
          f"mode={header.get('mode', '?')})")
    print("  per-category records:")
    for category, count in report["categories"].items():
        print(f"    {category:<16} {count}")
    print("  top talkers:")
    for talker in report["top_talkers"]:
        print(f"    node {talker['node']:<12} {talker['records']} records")
    paths = report["route_paths"]
    print(f"  routes: {paths.get('routes', 0)}")
    if paths.get("routes"):
        print(f"    hops mean/max:        "
              f"{paths['hops_mean']:.2f} / {paths['hops_max']}")
        print(f"    hop histogram:        {paths['hop_histogram']}")
        print(f"    hop latency mean/p95: {paths['hop_latency_mean']:.6f} / "
              f"{paths['hop_latency_p95']:.6f}")
        print(f"    total latency p95:    {paths['total_latency_p95']:.6f}")
        for route in report["example_routes"]:
            print(f"    e.g. trace {route['trace_id']}: "
                  f"{' -> '.join(str(n) for n in route['path'])} "
                  f"({route['total_latency']:.6f}s)")
    if "obs" in report:
        obs = report["obs"]
        print(f"obs: {args.obs}  (mode={obs['mode']}, name={obs['name']}, "
              f"seed={obs['seed']})")
        for name, value in obs["counters"].items():
            print(f"    {name:<28} {value}")
        for name, value in obs["gauges"].items():
            print(f"    {name:<28} {value}")
        for name, summary in obs["histograms"].items():
            print(f"    {name:<28} count={summary['count']} "
                  f"mean={summary['mean']:.6f} max={summary['max']:.6f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
